/**
 * @file
 * k-d tree with runtime dimensionality.
 *
 * The arm planners' DoF is a command-line parameter, so their
 * joint-space nearest-neighbor structure cannot fix the dimension at
 * compile time like KdTree<Dim>. Points are stored in one flat arena
 * for locality.
 *
 * This is the runtime-dimension variant of the preserved reference
 * ("node") NN engine; DynBucketKdTree (bucket_kdtree.h) is the
 * cache-conscious production engine. Both implement the (dist2, id)
 * tie-break contract documented in kdtree.h / DESIGN.md, so their
 * results are exactly identical.
 */

#ifndef RTR_POINTCLOUD_DYN_KDTREE_H
#define RTR_POINTCLOUD_DYN_KDTREE_H

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "pointcloud/kdtree.h"
#include "util/logging.h"

namespace rtr {

/** k-d tree over points in R^dim (dim fixed at construction). */
class DynKdTree
{
  public:
    /** @param dim Dimensionality of all stored points. */
    explicit DynKdTree(std::size_t dim) : dim_(dim)
    {
        RTR_ASSERT(dim >= 1, "kd-tree dimension must be >= 1");
    }

    std::size_t size() const { return nodes_.size(); }
    bool empty() const { return nodes_.empty(); }
    std::size_t dim() const { return dim_; }

    /** Remove all points. */
    void
    clear()
    {
        nodes_.clear();
        coords_.clear();
        root_ = kNull;
    }

    /** Insert a point (length dim()) with a payload id. */
    void
    insert(const std::vector<double> &p, std::uint32_t id)
    {
        RTR_ASSERT(p.size() == dim_, "point dimension mismatch");
        std::int32_t node = allocNode(p, id);
        if (root_ == kNull) {
            root_ = node;
            return;
        }
        std::int32_t cur = root_;
        std::size_t axis = 0;
        while (true) {
            Node &n = nodes_[static_cast<std::size_t>(cur)];
            bool go_left = p[axis] < coord(cur, axis);
            std::int32_t &child = go_left ? n.left : n.right;
            if (child == kNull) {
                child = node;
                return;
            }
            cur = child;
            axis = (axis + 1) % dim_;
        }
    }

    /** Nearest stored point to the query; tree must be non-empty. */
    KdHit
    nearest(const std::vector<double> &query) const
    {
        RTR_ASSERT(!empty(), "nearest() on empty kd-tree");
        KdHit best;
        nearestRec(root_, query.data(), 0, best);
        return best;
    }

    /** The k nearest stored points, sorted by (dist2, id). */
    std::vector<KdHit>
    kNearest(const std::vector<double> &query, std::size_t k) const
    {
        std::vector<KdHit> hits;
        kNearestInto(query, k, hits);
        return hits;
    }

    /** kNearest into a reusable buffer (cleared first). */
    void
    kNearestInto(const std::vector<double> &query, std::size_t k,
                 std::vector<KdHit> &out) const
    {
        out.clear();
        if (k == 0 || empty())
            return;
        out.reserve(k + 1);
        kNearestRec(root_, query.data(), 0, k, out);
        std::sort(out.begin(), out.end(), kdHitLess);
    }

    /** All points within the radius, sorted by (dist2, id). */
    std::vector<KdHit>
    radiusSearch(const std::vector<double> &query, double radius) const
    {
        std::vector<KdHit> hits;
        radiusSearchInto(query, radius, hits);
        return hits;
    }

    /** radiusSearch into a reusable buffer (cleared first). */
    void
    radiusSearchInto(const std::vector<double> &query, double radius,
                     std::vector<KdHit> &out) const
    {
        out.clear();
        if (!empty())
            radiusRec(root_, query.data(), 0, radius * radius, out);
        std::sort(out.begin(), out.end(), kdHitLess);
    }

  private:
    static constexpr std::int32_t kNull = -1;

    struct Node
    {
        std::uint32_t id;
        std::int32_t left = kNull;
        std::int32_t right = kNull;
    };

    double
    coord(std::int32_t node, std::size_t axis) const
    {
        return coords_[static_cast<std::size_t>(node) * dim_ + axis];
    }

    double
    squaredDistance(std::int32_t node, const double *query) const
    {
        const double *p = &coords_[static_cast<std::size_t>(node) * dim_];
        double sum = 0.0;
        for (std::size_t d = 0; d < dim_; ++d) {
            double diff = p[d] - query[d];
            sum += diff * diff;
        }
        return sum;
    }

    std::int32_t
    allocNode(const std::vector<double> &p, std::uint32_t id)
    {
        nodes_.push_back(Node{id, kNull, kNull});
        coords_.insert(coords_.end(), p.begin(), p.end());
        return static_cast<std::int32_t>(nodes_.size() - 1);
    }

    void
    nearestRec(std::int32_t node, const double *query, std::size_t axis,
               KdHit &best) const
    {
        if (node == kNull)
            return;
        const Node &n = nodes_[static_cast<std::size_t>(node)];
        double d2 = squaredDistance(node, query);
        if (kdHitBetter(d2, n.id, best))
            best = KdHit{n.id, d2};

        double delta = query[axis] - coord(node, axis);
        std::size_t next = (axis + 1) % dim_;
        std::int32_t near_child = delta < 0 ? n.left : n.right;
        std::int32_t far_child = delta < 0 ? n.right : n.left;
        nearestRec(near_child, query, next, best);
        // <= so an equal-distance smaller-id point in the far subtree
        // still gets visited (the (dist2, id) tie-break).
        if (delta * delta <= best.dist2)
            nearestRec(far_child, query, next, best);
    }

    void
    kNearestRec(std::int32_t node, const double *query, std::size_t axis,
                std::size_t k, std::vector<KdHit> &heap) const
    {
        if (node == kNull)
            return;
        const Node &n = nodes_[static_cast<std::size_t>(node)];
        double d2 = squaredDistance(node, query);
        if (heap.size() < k) {
            heap.push_back(KdHit{n.id, d2});
            std::push_heap(heap.begin(), heap.end(), kdHitLess);
        } else if (kdHitBetter(d2, n.id, heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), kdHitLess);
            heap.back() = KdHit{n.id, d2};
            std::push_heap(heap.begin(), heap.end(), kdHitLess);
        }

        double delta = query[axis] - coord(node, axis);
        std::size_t next = (axis + 1) % dim_;
        std::int32_t near_child = delta < 0 ? n.left : n.right;
        std::int32_t far_child = delta < 0 ? n.right : n.left;
        kNearestRec(near_child, query, next, k, heap);
        double worst = heap.size() < k
                           ? std::numeric_limits<double>::max()
                           : heap.front().dist2;
        if (delta * delta <= worst)
            kNearestRec(far_child, query, next, k, heap);
    }

    void
    radiusRec(std::int32_t node, const double *query, std::size_t axis,
              double radius2, std::vector<KdHit> &hits) const
    {
        if (node == kNull)
            return;
        const Node &n = nodes_[static_cast<std::size_t>(node)];
        double d2 = squaredDistance(node, query);
        if (d2 <= radius2)
            hits.push_back(KdHit{n.id, d2});

        double delta = query[axis] - coord(node, axis);
        std::size_t next = (axis + 1) % dim_;
        std::int32_t near_child = delta < 0 ? n.left : n.right;
        std::int32_t far_child = delta < 0 ? n.right : n.left;
        radiusRec(near_child, query, next, radius2, hits);
        if (delta * delta <= radius2)
            radiusRec(far_child, query, next, radius2, hits);
    }

    std::size_t dim_;
    std::vector<Node> nodes_;
    std::vector<double> coords_;  // flat, dim_ per node
    std::int32_t root_ = kNull;
};

} // namespace rtr

#endif // RTR_POINTCLOUD_DYN_KDTREE_H

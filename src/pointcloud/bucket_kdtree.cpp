#include "pointcloud/bucket_kdtree.h"

#include <algorithm>
#include <numeric>

#include "telemetry/trace.h"
#include "util/parallel.h"
#include "util/simd.h"

namespace rtr {
namespace detail {

BucketKdCore::BucketKdCore(std::size_t dim) : dim_(dim)
{
    RTR_ASSERT(dim_ >= 1, "kd-tree dimension must be >= 1");
}

void
BucketKdCore::clear()
{
    total_ = 0;
    blocks_.clear();
    pending_.clear();
    pending_ids_.clear();
}

std::uint32_t
BucketKdCore::levelFor(std::size_t count) const
{
    std::uint32_t level = 0;
    while ((static_cast<std::size_t>(kLeafCapacity) << (level + 1)) <=
           count)
        ++level;
    return level;
}

BucketKdCore::Block
BucketKdCore::buildBlock(const std::vector<double> &pts,
                         const std::vector<std::uint32_t> &ids) const
{
    const std::size_t n = ids.size();
    RTR_ASSERT(n > 0, "bucket block must hold at least one point");
    Block block;
    block.count = static_cast<std::uint32_t>(n);
    block.level = levelFor(n);
    block.nodes.reserve(2 * (n / kLeafCapacity + 1));

    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);

    // Iterative median split. Ranges always halve by index (even with
    // fully duplicated coordinates), so depth is bounded by log2(n).
    struct Task
    {
        std::uint32_t lo, hi;
        std::uint32_t axis;
        std::int32_t parent; ///< -1 for the root.
        bool is_left;
        int depth;
    };
    std::vector<Task> stack;
    stack.push_back(Task{0, static_cast<std::uint32_t>(n), 0, -1, false,
                         1});
    while (!stack.empty()) {
        Task task = stack.back();
        stack.pop_back();
        RTR_ASSERT(task.depth < kMaxDepth, "bucket kd-tree too deep");

        const auto index = static_cast<std::int32_t>(block.nodes.size());
        block.nodes.push_back(Node{});
        if (task.parent >= 0) {
            Node &parent =
                block.nodes[static_cast<std::size_t>(task.parent)];
            (task.is_left ? parent.left : parent.right) = index;
        }

        Node &node = block.nodes.back();
        node.axis = task.axis;
        if (task.hi - task.lo <= kLeafCapacity) {
            node.lo = task.lo;
            node.hi = task.hi;
            continue; // leaf: left stays -1
        }

        const std::uint32_t mid = task.lo + (task.hi - task.lo) / 2;
        std::nth_element(
            order.begin() + task.lo, order.begin() + mid,
            order.begin() + task.hi,
            [&](std::uint32_t a, std::uint32_t b) {
                return pts[a * dim_ + task.axis] <
                       pts[b * dim_ + task.axis];
            });
        node.split = pts[order[mid] * dim_ + task.axis];
        const auto next =
            static_cast<std::uint32_t>((task.axis + 1) % dim_);
        // Right first so the left child pops (and is laid out) first.
        stack.push_back(
            Task{mid, task.hi, next, index, false, task.depth + 1});
        stack.push_back(
            Task{task.lo, mid, next, index, true, task.depth + 1});
    }

    // Permute the points into leaf order, coordinate-major: leaf
    // ranges become dim_ contiguous streams the SIMD scan consumes.
    block.soa.resize(dim_ * n);
    block.ids.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t src = order[i];
        block.ids[i] = ids[src];
        for (std::size_t d = 0; d < dim_; ++d)
            block.soa[d * n + i] = pts[src * dim_ + d];
    }
    return block;
}

void
BucketKdCore::appendBlockPoints(const Block &block,
                                std::vector<double> &pts,
                                std::vector<std::uint32_t> &ids) const
{
    const std::size_t n = block.count;
    for (std::size_t i = 0; i < n; ++i) {
        ids.push_back(block.ids[i]);
        for (std::size_t d = 0; d < dim_; ++d)
            pts.push_back(block.soa[d * n + i]);
    }
}

void
BucketKdCore::bulkBuild(const double *pts, std::size_t n)
{
    clear();
    if (n == 0)
        return;
    telemetry::TraceSpan span("nn-build");
    std::vector<double> flat(pts, pts + n * dim_);
    std::vector<std::uint32_t> ids(n);
    std::iota(ids.begin(), ids.end(), 0u);
    blocks_.push_back(buildBlock(flat, ids));
    total_ = n;
}

void
BucketKdCore::insert(const double *p, std::uint32_t id)
{
    pending_.insert(pending_.end(), p, p + dim_);
    pending_ids_.push_back(id);
    ++total_;
    if (pending_ids_.size() >= kLeafCapacity)
        flushPending();
}

void
BucketKdCore::flushPending()
{
    // Amortized-logarithmic rebuild: the flushed buffer becomes a
    // level-0 block; equal-level blocks merge (binary-counter carry),
    // and a merged block's count at least doubles, so its level
    // strictly increases and every point sees O(log n) rebuilds.
    telemetry::TraceSpan span("nn-rebuild");
    blocks_.push_back(buildBlock(pending_, pending_ids_));
    pending_.clear();
    pending_ids_.clear();

    bool merged = true;
    while (merged) {
        merged = false;
        for (std::size_t a = 0; a < blocks_.size() && !merged; ++a) {
            for (std::size_t b = a + 1; b < blocks_.size(); ++b) {
                if (blocks_[a].level != blocks_[b].level)
                    continue;
                std::vector<double> pts;
                std::vector<std::uint32_t> ids;
                pts.reserve(
                    (blocks_[a].count + blocks_[b].count) * dim_);
                ids.reserve(blocks_[a].count + blocks_[b].count);
                appendBlockPoints(blocks_[a], pts, ids);
                appendBlockPoints(blocks_[b], pts, ids);
                blocks_.erase(blocks_.begin() +
                              static_cast<std::ptrdiff_t>(b));
                blocks_[a] = buildBlock(pts, ids);
                merged = true;
                break;
            }
        }
    }
}

template <typename LeafFn, typename KeepFn>
void
BucketKdCore::traverseBlock(const Block &block, const double *q,
                            LeafFn &&leaf, KeepFn &&keep) const
{
    struct Frame
    {
        std::int32_t node;
        double delta2;
    };
    Frame stack[kMaxDepth];
    int top = 0;
    const Node *nodes = block.nodes.data();
    std::int32_t cur = 0;
    while (true) {
        const Node &nd = nodes[cur];
        if (nd.left < 0) {
            leaf(nd.lo, nd.hi);
            bool resumed = false;
            while (top > 0) {
                const Frame frame = stack[--top];
                // Far subtrees survive on delta2 == bound: an equal-
                // distance point with a smaller id still wins a tie.
                if (keep(frame.delta2)) {
                    cur = frame.node;
                    resumed = true;
                    break;
                }
            }
            if (!resumed)
                return;
        } else {
            const double delta = q[nd.axis] - nd.split;
            const bool go_left = delta < 0;
            stack[top] =
                Frame{go_left ? nd.right : nd.left, delta * delta};
            ++top;
            cur = go_left ? nd.left : nd.right;
        }
    }
}

template <typename Visit>
void
BucketKdCore::scanLeaf(const Block &block, std::uint32_t lo,
                       std::uint32_t hi, const double *q,
                       Visit &&visit) const
{
    const std::size_t stride = block.count;
    const double *soa = block.soa.data();
    const std::uint32_t *ids = block.ids.data();
    std::size_t i = lo;
    constexpr std::size_t W = simd::VecD::kWidth;
    if constexpr (W > 1) {
        // Each lane accumulates diff*diff per dimension in index order
        // with separate multiply and add — bitwise the scalar sum.
        double d2buf[W];
        for (; i + W <= hi; i += W) {
            simd::VecD acc = simd::VecD::zero();
            for (std::size_t d = 0; d < dim_; ++d) {
                const simd::VecD diff =
                    simd::VecD::load(soa + d * stride + i) -
                    simd::VecD::broadcast(q[d]);
                acc = simd::VecD::mulAdd(acc, diff, diff);
            }
            acc.store(d2buf);
            for (std::size_t w = 0; w < W; ++w)
                visit(d2buf[w], ids[i + w]);
        }
    }
    for (; i < hi; ++i) {
        double d2 = 0.0;
        for (std::size_t d = 0; d < dim_; ++d) {
            const double diff = soa[d * stride + i] - q[d];
            d2 += diff * diff;
        }
        visit(d2, ids[i]);
    }
}

template <typename Visit>
void
BucketKdCore::scanPending(const double *q, Visit &&visit) const
{
    for (std::size_t i = 0; i < pending_ids_.size(); ++i) {
        const double *p = pending_.data() + i * dim_;
        double d2 = 0.0;
        for (std::size_t d = 0; d < dim_; ++d) {
            const double diff = p[d] - q[d];
            d2 += diff * diff;
        }
        visit(d2, pending_ids_[i]);
    }
}

void
BucketKdCore::blockNearest(const Block &block, const double *q,
                           KdHit &best) const
{
    traverseBlock(
        block, q,
        [&](std::uint32_t lo, std::uint32_t hi) {
            scanLeaf(block, lo, hi, q,
                     [&](double d2, std::uint32_t id) {
                         if (kdHitBetter(d2, id, best))
                             best = KdHit{id, d2};
                     });
        },
        [&](double delta2) { return delta2 <= best.dist2; });
}

KdHit
BucketKdCore::nearest(const double *q) const
{
    KdHit best;
    for (const Block &block : blocks_)
        blockNearest(block, q, best);
    scanPending(q, [&](double d2, std::uint32_t id) {
        if (kdHitBetter(d2, id, best))
            best = KdHit{id, d2};
    });
    return best;
}

void
BucketKdCore::blockKNearest(const Block &block, const double *q,
                            std::size_t k,
                            std::vector<KdHit> &heap) const
{
    auto update = [&](double d2, std::uint32_t id) {
        if (heap.size() < k) {
            heap.push_back(KdHit{id, d2});
            std::push_heap(heap.begin(), heap.end(), kdHitLess);
        } else if (kdHitBetter(d2, id, heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), kdHitLess);
            heap.back() = KdHit{id, d2};
            std::push_heap(heap.begin(), heap.end(), kdHitLess);
        }
    };
    traverseBlock(
        block, q,
        [&](std::uint32_t lo, std::uint32_t hi) {
            scanLeaf(block, lo, hi, q, update);
        },
        [&](double delta2) {
            return heap.size() < k || delta2 <= heap.front().dist2;
        });
}

void
BucketKdCore::kNearestInto(const double *q, std::size_t k,
                           std::vector<KdHit> &out) const
{
    out.clear();
    if (k == 0)
        return;
    out.reserve(k + 1);
    for (const Block &block : blocks_)
        blockKNearest(block, q, k, out);
    scanPending(q, [&](double d2, std::uint32_t id) {
        if (out.size() < k) {
            out.push_back(KdHit{id, d2});
            std::push_heap(out.begin(), out.end(), kdHitLess);
        } else if (kdHitBetter(d2, id, out.front())) {
            std::pop_heap(out.begin(), out.end(), kdHitLess);
            out.back() = KdHit{id, d2};
            std::push_heap(out.begin(), out.end(), kdHitLess);
        }
    });
    std::sort(out.begin(), out.end(), kdHitLess);
}

void
BucketKdCore::blockRadius(const Block &block, const double *q,
                          double radius2,
                          std::vector<KdHit> &out) const
{
    traverseBlock(
        block, q,
        [&](std::uint32_t lo, std::uint32_t hi) {
            scanLeaf(block, lo, hi, q,
                     [&](double d2, std::uint32_t id) {
                         if (d2 <= radius2)
                             out.push_back(KdHit{id, d2});
                     });
        },
        [&](double delta2) { return delta2 <= radius2; });
}

void
BucketKdCore::radiusSearchInto(const double *q, double radius,
                               std::vector<KdHit> &out) const
{
    out.clear();
    const double radius2 = radius * radius;
    for (const Block &block : blocks_)
        blockRadius(block, q, radius2, out);
    scanPending(q, [&](double d2, std::uint32_t id) {
        if (d2 <= radius2)
            out.push_back(KdHit{id, d2});
    });
    std::sort(out.begin(), out.end(), kdHitLess);
}

void
BucketKdCore::nearestBatch(const double *queries, std::size_t n_queries,
                           KdHit *out) const
{
    parallelForChunks(0, n_queries, 0, [&](const ChunkRange &chunk) {
        for (std::size_t i = chunk.begin; i < chunk.end; ++i)
            out[i] = nearest(queries + i * dim_);
    });
}

void
BucketKdCore::kNearestBatch(const double *queries, std::size_t n_queries,
                            std::size_t k, KdHit *out) const
{
    parallelForChunks(0, n_queries, 0, [&](const ChunkRange &chunk) {
        std::vector<KdHit> hits; // one heap per chunk, reused
        hits.reserve(k + 1);
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
            kNearestInto(queries + i * dim_, k, hits);
            RTR_ASSERT(!hits.empty(),
                       "kNearestBatch() on empty kd-tree");
            KdHit *slot = out + i * k;
            for (std::size_t j = 0; j < k; ++j)
                slot[j] = hits[std::min(j, hits.size() - 1)];
        }
    });
}

} // namespace detail
} // namespace rtr

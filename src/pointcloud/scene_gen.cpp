#include "pointcloud/scene_gen.h"

#include <cmath>

#include "geom/angle.h"
#include "util/logging.h"

namespace rtr {

RigidTransform3
CameraPose::worldFromCamera() const
{
    RigidTransform3 t;
    t.rotation = rotationZ(yaw);
    t.translation = position;
    return t;
}

IndoorScene
IndoorScene::livingRoom(std::uint64_t seed)
{
    IndoorScene scene;
    scene.room_ = Aabb3{{0.0, 0.0, 0.0}, {8.0, 6.0, 3.0}};

    Rng rng(seed);
    // Furniture: a sofa, a table, shelves, and a couple of random boxes.
    scene.furniture_.push_back(
        Aabb3{{0.5, 1.0, 0.0}, {1.5, 4.0, 0.9}});           // sofa
    scene.furniture_.push_back(
        Aabb3{{3.0, 2.5, 0.0}, {4.5, 3.5, 0.75}});          // table
    scene.furniture_.push_back(
        Aabb3{{7.5, 0.5, 0.0}, {7.95, 3.0, 2.2}});          // shelf
    for (int i = 0; i < 6; ++i) {
        double x = rng.uniform(1.0, 6.5);
        double y = rng.uniform(0.5, 5.0);
        double w = rng.uniform(0.3, 1.0);
        double d = rng.uniform(0.3, 1.0);
        double h = rng.uniform(0.4, 1.8);
        scene.furniture_.push_back(
            Aabb3{{x, y, 0.0}, {x + w, y + d, h}});
    }
    // Wall-mounted features (shelves, frames, a doorway lintel): they
    // protrude from the flat walls and pin down the tangential degrees
    // of freedom that point-to-point ICP cannot constrain on bare
    // planes.
    for (int i = 0; i < 8; ++i) {
        double h0 = rng.uniform(0.8, 2.2);
        double len = rng.uniform(0.4, 1.5);
        double depth = rng.uniform(0.08, 0.25);
        int wall = static_cast<int>(rng.intRange(0, 3));
        double along = rng.uniform(0.5, 5.0);
        switch (wall) {
          case 0:  // y = 0 wall
            scene.furniture_.push_back(Aabb3{
                {along, 0.0, h0}, {along + len, depth, h0 + 0.4}});
            break;
          case 1:  // y = max wall
            scene.furniture_.push_back(Aabb3{
                {along, 6.0 - depth, h0}, {along + len, 6.0, h0 + 0.4}});
            break;
          case 2:  // x = 0 wall
            scene.furniture_.push_back(Aabb3{
                {0.0, along, h0}, {depth, along + len, h0 + 0.4}});
            break;
          default:  // x = max wall
            scene.furniture_.push_back(Aabb3{
                {8.0 - depth, along, h0}, {8.0, along + len, h0 + 0.4}});
            break;
        }
    }
    return scene;
}

double
IndoorScene::raycast(const Vec3 &origin, const Vec3 &dir,
                     double max_range) const
{
    double best = max_range;

    // Room shell: the ray exits the interior box at some t; that exit is
    // the wall/floor/ceiling hit.
    {
        double t_exit = max_range;
        const double o[3] = {origin.x, origin.y, origin.z};
        const double d[3] = {dir.x, dir.y, dir.z};
        const double lo[3] = {room_.lo.x, room_.lo.y, room_.lo.z};
        const double hi[3] = {room_.hi.x, room_.hi.y, room_.hi.z};
        for (int axis = 0; axis < 3; ++axis) {
            if (d[axis] == 0.0)
                continue;
            double bound = d[axis] > 0.0 ? hi[axis] : lo[axis];
            double t = (bound - o[axis]) / d[axis];
            t_exit = std::min(t_exit, t);
        }
        if (t_exit >= 0.0)
            best = std::min(best, t_exit);
    }

    for (const Aabb3 &box : furniture_) {
        double t;
        if (box.intersectRay(origin, dir, &t) && t < best)
            best = t;
    }
    return best;
}

PointCloud
simulateScan(const IndoorScene &scene, const CameraPose &pose,
             const DepthCamera &camera, Rng &rng)
{
    PointCloud cloud;
    RigidTransform3 world_from_cam = pose.worldFromCamera();
    RigidTransform3 cam_from_world = world_from_cam.inverted();

    for (int v = 0; v < camera.height; ++v) {
        double pitch = -camera.v_fov / 2.0 +
                       camera.v_fov * (v + 0.5) / camera.height;
        for (int u = 0; u < camera.width; ++u) {
            double azim = -camera.h_fov / 2.0 +
                          camera.h_fov * (u + 0.5) / camera.width;
            // Camera frame: +x forward, +y left, +z up.
            Vec3 dir_cam{std::cos(pitch) * std::cos(azim),
                         std::cos(pitch) * std::sin(azim),
                         std::sin(pitch)};
            Vec3 dir_world =
                RigidTransform3{world_from_cam.rotation, Vec3{}}.apply(
                    dir_cam);
            double depth =
                scene.raycast(pose.position, dir_world, camera.max_range);
            if (depth >= camera.max_range)
                continue;
            depth += rng.normal(0.0, camera.noise_stddev);
            Vec3 hit_world = pose.position + dir_world * depth;
            cloud.add(cam_from_world.apply(hit_world));
        }
    }
    return cloud;
}

std::vector<CameraPose>
makeTrajectory(const IndoorScene &scene, int n_poses)
{
    RTR_ASSERT(n_poses >= 2, "trajectory needs >= 2 poses");
    std::vector<CameraPose> poses;
    Vec3 center = scene.room().center();
    double rx = (scene.room().hi.x - scene.room().lo.x) * 0.22;
    double ry = (scene.room().hi.y - scene.room().lo.y) * 0.22;

    for (int i = 0; i < n_poses; ++i) {
        // Small inter-frame motion, as in a real RGB-D stream: the
        // whole sweep covers a modest arc regardless of frame count.
        double phase = kTwoPi * i / n_poses * 0.12;
        CameraPose pose;
        pose.position = {center.x + rx * std::cos(phase),
                         center.y + ry * std::sin(phase), 1.4};
        // Look roughly outward, turning gently with the arc.
        pose.yaw = phase * 2.0 + 0.3;
        poses.push_back(pose);
    }
    return poses;
}

} // namespace rtr

#include "telemetry/trace.h"

namespace rtr {
namespace telemetry {

namespace {

/**
 * Per-thread buffer cache: pairs the resolved buffer with the owning
 * tracer's generation so Tracer::reset() (which frees the buffers)
 * invalidates the cache instead of leaving it dangling.
 */
struct BufferCache
{
    ThreadBuffer *buffer = nullptr;
    std::uint64_t generation = 0;
};

thread_local BufferCache tl_cache;

} // namespace

const char *
categoryName(Category cat)
{
    switch (cat) {
      case Category::Phase:
        return "phase";
      case Category::Roi:
        return "roi";
      case Category::Bench:
        return "bench";
      case Category::Counter:
        return "counter";
      case Category::User:
        return "user";
    }
    return "user";
}

Tracer &
Tracer::global()
{
    // Intentionally leaked: pool workers touch the tracer at thread
    // entry, and static-destruction order across TUs would otherwise
    // race a late-starting worker against ~Tracer at process exit.
    // The buffers stay reachable through this pointer, so leak
    // checkers stay quiet and the OS reclaims them.
    static Tracer *tracer = new Tracer;
    return *tracer;
}

void
Tracer::registerCurrentThread(std::string name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (tl_cache.buffer &&
        tl_cache.generation ==
            generation_.load(std::memory_order_relaxed)) {
        tl_cache.buffer->setThreadName(std::move(name));
        return;
    }
    buffers_.push_back(std::make_unique<ThreadBuffer>(
        next_tid_++, std::move(name), capacity_));
    tl_cache.buffer = buffers_.back().get();
    tl_cache.generation = generation_.load(std::memory_order_relaxed);
}

ThreadBuffer &
Tracer::currentBuffer()
{
    if (tl_cache.buffer &&
        tl_cache.generation ==
            generation_.load(std::memory_order_relaxed))
        return *tl_cache.buffer;
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::make_unique<ThreadBuffer>(
        next_tid_, "thread-" + std::to_string(next_tid_), capacity_));
    ++next_tid_;
    tl_cache.buffer = buffers_.back().get();
    tl_cache.generation = generation_.load(std::memory_order_relaxed);
    return *tl_cache.buffer;
}

std::size_t
Tracer::totalEvents() const
{
    std::size_t total = 0;
    for (const ThreadBuffer *buffer : buffers())
        total += buffer->size();
    return total;
}

std::uint64_t
Tracer::totalDropped() const
{
    std::uint64_t total = 0;
    for (const ThreadBuffer *buffer : buffers())
        total += buffer->dropped();
    return total;
}

void
Tracer::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.clear();
    next_tid_ = 1;
    t0_ns_ = 0;
    generation_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace telemetry
} // namespace rtr

/**
 * @file
 * Hardware performance-counter sessions over perf_event_open(2).
 *
 * The paper's micro-architectural claims (IPC, L1D/LLC miss ratios,
 * MPKI — Figs. 15/18/19 and much of §V) come from zsim. On a real
 * machine the same quantities are measured with the PMU: one
 * perf_event_open *group* (all counters scheduled together, so their
 * ratios are taken over the same instruction window) counting cycles,
 * instructions, L1D loads + misses, LLC loads + misses, and branch
 * misses on the calling thread.
 *
 * Availability is never assumed: containers, VMs, and
 * `kernel.perf_event_paranoid` commonly deny the syscall, and many
 * hosts lack specific cache events. A group that cannot open reports
 * supported() == false with a reason string, individual events that
 * fail are reported per-counter, and every consumer in this repo
 * prints "n/a" instead of failing. Setting RTR_NO_PERF=1 forces the
 * unsupported path (used by tests and for A/B runs).
 */

#ifndef RTR_TELEMETRY_PERF_COUNTERS_H
#define RTR_TELEMETRY_PERF_COUNTERS_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace rtr {
namespace telemetry {

/** The fixed counter set of a group session. */
enum class PerfCounter : std::uint8_t
{
    Cycles,
    Instructions,
    L1dLoads,
    L1dMisses,
    LlcLoads,
    LlcMisses,
    BranchMisses,
};

constexpr std::size_t kPerfCounterCount = 7;

/** Display name ("cycles", "l1d_misses", ...). */
const char *perfCounterName(PerfCounter counter);

/**
 * One reading of a counter group. Values are scaled for multiplexing
 * (value * time_enabled / time_running) when the kernel had to rotate
 * the group onto the PMU; `multiplexed` flags that the numbers are
 * estimates rather than exact counts.
 */
struct PerfSample
{
    std::array<double, kPerfCounterCount> value{};
    std::array<bool, kPerfCounterCount> available{};
    bool multiplexed = false;

    bool
    has(PerfCounter counter) const
    {
        return available[static_cast<std::size_t>(counter)];
    }

    double
    get(PerfCounter counter) const
    {
        return value[static_cast<std::size_t>(counter)];
    }

    /** value(a) / value(b) when both are available and b > 0. */
    std::optional<double> ratio(PerfCounter a, PerfCounter b) const;

    /** Instructions per cycle. */
    std::optional<double>
    ipc() const
    {
        return ratio(PerfCounter::Instructions, PerfCounter::Cycles);
    }

    /** L1D misses / L1D loads. */
    std::optional<double>
    l1dMissRatio() const
    {
        return ratio(PerfCounter::L1dMisses, PerfCounter::L1dLoads);
    }

    /** LLC misses / LLC loads. */
    std::optional<double>
    llcMissRatio() const
    {
        return ratio(PerfCounter::LlcMisses, PerfCounter::LlcLoads);
    }

    /** Misses per kilo-instruction for any counter. */
    std::optional<double> mpki(PerfCounter counter) const;
};

/**
 * A perf_event_open group session counting the PerfCounter set on the
 * calling thread (user space only). Lifecycle:
 *
 *   PerfCounterGroup group;
 *   if (group.open()) { group.enable(); ...; group.disable(); }
 *   PerfSample sample = group.read();   // "n/a" fields when !open
 *
 * enable()/disable() nest by pairing (the kernel counts while enabled)
 * and accumulate across windows until reset(). All methods are safe to
 * call on an unsupported session (they do nothing), so callers need no
 * #ifdef or branching beyond presenting "n/a".
 */
class PerfCounterGroup
{
  public:
    PerfCounterGroup() = default;
    ~PerfCounterGroup();

    PerfCounterGroup(const PerfCounterGroup &) = delete;
    PerfCounterGroup &operator=(const PerfCounterGroup &) = delete;

    /**
     * Try to open the group (idempotent). False when perf_event_open
     * is unavailable for the *leader* event; individual non-leader
     * events may still be missing on success (see counterSupported).
     */
    bool open();

    /** Whether the session is live (leader opened). */
    bool supported() const { return leader_fd_ >= 0; }

    /** Why open() failed ("" while supported or before open()). */
    const std::string &unsupportedReason() const { return reason_; }

    /** Whether one counter of the group actually opened. */
    bool
    counterSupported(PerfCounter counter) const
    {
        return fds_[static_cast<std::size_t>(counter)] >= 0;
    }

    /** Zero all counters of the group. */
    void reset();

    /** Start counting (group-wide). */
    void enable();

    /** Stop counting (group-wide); totals keep accumulating. */
    void disable();

    /** Read the group's accumulated totals. */
    PerfSample read() const;

  private:
    void close();

    std::array<int, kPerfCounterCount> fds_{-1, -1, -1, -1,
                                            -1, -1, -1};
    std::array<std::uint64_t, kPerfCounterCount> ids_{};
    int leader_fd_ = -1;
    bool open_attempted_ = false;
    std::string reason_;
};

/**
 * Arm (or, with nullptr, disarm) a group to be gated by the ROI hooks:
 * rtr::roiBegin() enables it, rtr::roiEnd() disables it, so the
 * counters cover exactly the region the paper's zsim hooks bracket,
 * accumulating across ROIs until the group is reset. The armed pointer
 * is process-global; arm/disarm from the main thread only.
 */
void armRoiCounters(PerfCounterGroup *group);

} // namespace telemetry
} // namespace rtr

#endif // RTR_TELEMETRY_PERF_COUNTERS_H

#include "telemetry/trace_export.h"

#include <fstream>
#include <ostream>

namespace rtr {
namespace telemetry {

namespace {

/** JSON-escape a name (control characters, quotes, backslashes). */
std::string
escape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Microseconds (as a decimal string) relative to the time origin. */
std::string
micros(std::int64_t ns, std::int64_t t0_ns)
{
    const std::int64_t rel = ns - t0_ns;
    const std::int64_t whole = rel / 1000;
    const std::int64_t frac = rel % 1000 < 0 ? -(rel % 1000) : rel % 1000;
    std::string out = std::to_string(whole);
    out += '.';
    if (frac < 100)
        out += '0';
    if (frac < 10)
        out += '0';
    out += std::to_string(frac);
    return out;
}

} // namespace

void
writeChromeTrace(const Tracer &tracer, std::ostream &out)
{
    const std::int64_t t0 = tracer.timeOriginNs();
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    auto comma = [&] {
        if (!first)
            out << ",\n";
        first = false;
    };

    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
           "\"args\":{\"name\":\"rtrbench\"}}";
    first = false;

    for (const ThreadBuffer *buffer : tracer.buffers()) {
        comma();
        out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
            << buffer->tid() << ",\"args\":{\"name\":\""
            << escape(buffer->threadName()) << "\"}}";
        const std::size_t n = buffer->size();
        for (std::size_t i = 0; i < n; ++i) {
            const TraceEvent &event = buffer->event(i);
            comma();
            out << "{\"name\":\"" << escape(event.name)
                << "\",\"cat\":\"" << categoryName(event.cat)
                << "\",\"pid\":1,\"tid\":" << buffer->tid()
                << ",\"ts\":" << micros(event.ts_ns, t0);
            switch (event.type) {
              case TraceEvent::Type::Complete:
                out << ",\"ph\":\"X\",\"dur\":"
                    << micros(event.ts_ns + event.dur_ns, event.ts_ns);
                break;
              case TraceEvent::Type::Instant:
                out << ",\"ph\":\"i\",\"s\":\"t\"";
                break;
              case TraceEvent::Type::Counter:
                out << ",\"ph\":\"C\",\"args\":{\"value\":"
                    << event.value << "}";
                break;
            }
            out << "}";
        }
        if (buffer->dropped() > 0) {
            comma();
            out << "{\"name\":\"dropped_events\",\"cat\":\"counter\","
                   "\"ph\":\"C\",\"pid\":1,\"tid\":"
                << buffer->tid() << ",\"ts\":" << micros(nowNs(), t0)
                << ",\"args\":{\"value\":" << buffer->dropped() << "}}";
        }
    }
    out << "\n]}\n";
}

bool
writeChromeTraceFile(const Tracer &tracer, const std::string &path)
{
    std::ofstream file(path);
    if (!file)
        return false;
    writeChromeTrace(tracer, file);
    return static_cast<bool>(file);
}

} // namespace telemetry
} // namespace rtr

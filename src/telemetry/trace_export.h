/**
 * @file
 * Chrome/Perfetto trace-event JSON export for the tracer.
 *
 * The output is the "JSON Array Format" wrapped in an object
 * (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
 * load it in `chrome://tracing` or https://ui.perfetto.dev. Timestamps
 * are microseconds relative to the tracer's time origin; spans are "X"
 * (complete) events, instants "i", counter samples "C", and each
 * thread contributes an "M" metadata record carrying its name.
 */

#ifndef RTR_TELEMETRY_TRACE_EXPORT_H
#define RTR_TELEMETRY_TRACE_EXPORT_H

#include <iosfwd>
#include <string>

#include "telemetry/trace.h"

namespace rtr {
namespace telemetry {

/**
 * Serialize every registered buffer to trace-event JSON. Call after
 * recording has quiesced (tracer disabled, no threads mid-push);
 * events recorded concurrently with the export may be missed but
 * never torn (the size index is released by the producer).
 */
void writeChromeTrace(const Tracer &tracer, std::ostream &out);

/** writeChromeTrace to a file; returns false if unwritable. */
bool writeChromeTraceFile(const Tracer &tracer, const std::string &path);

} // namespace telemetry
} // namespace rtr

#endif // RTR_TELEMETRY_TRACE_EXPORT_H

/**
 * @file
 * Structured tracing: bounded per-thread event buffers.
 *
 * The paper's evaluation is largely *observability* — which phase a
 * kernel spends its cycles in, and how the memory system behaves while
 * it does. This tracer gives every run a machine-readable timeline to
 * answer the first question (perf_counters.h answers the second):
 *
 *  - Each thread owns a fixed-capacity single-producer buffer of
 *    64-byte events (spans, instants, numeric counter samples) stamped
 *    with steady-clock nanoseconds. The owning thread is the only
 *    writer; the exporter is the only reader (classic SPSC split — the
 *    producer publishes its write index with a release store, the
 *    consumer acquires it), so recording takes no locks and no
 *    allocation after registration.
 *  - Memory is bounded by construction: when a buffer is full, new
 *    events are *dropped and counted*, never overwritten — a truncated
 *    trace is still a valid trace, and the drop counter makes the
 *    truncation explicit.
 *  - Recording is globally gated by one relaxed atomic flag, so
 *    instrumentation left in library code costs a single predictable
 *    branch when tracing is off.
 *
 * trace_export.h serializes the buffers to Chrome/Perfetto trace-event
 * JSON (`chrome://tracing`, https://ui.perfetto.dev).
 */

#ifndef RTR_TELEMETRY_TRACE_H
#define RTR_TELEMETRY_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rtr {
namespace telemetry {

/** Event category; exported as the Chrome trace "cat" field. */
enum class Category : std::uint8_t
{
    Phase,   ///< PhaseProfiler-mirrored kernel phases.
    Roi,     ///< Region-of-interest begin/end markers.
    Bench,   ///< Benchmark-harness structure (runs, sweeps).
    Counter, ///< Numeric counter samples.
    User,    ///< Anything else.
};

/** Display name of a category. */
const char *categoryName(Category cat);

/** One recorded event (fixed 64 bytes; names are truncated to fit). */
struct TraceEvent
{
    enum class Type : std::uint8_t
    {
        Complete, ///< A span: [ts_ns, ts_ns + dur_ns).
        Instant,  ///< A point in time.
        Counter,  ///< A sampled numeric value.
    };

    static constexpr std::size_t kNameCapacity = 37;

    std::int64_t ts_ns = 0;  ///< steady-clock stamp (epoch: process).
    std::int64_t dur_ns = 0; ///< Complete spans only.
    double value = 0.0;      ///< Counter samples only.
    char name[kNameCapacity + 1] = {};
    Type type = Type::Instant;
    Category cat = Category::User;

    /** Copy (and truncate) a name into the fixed-size field. */
    void
    setName(std::string_view n)
    {
        const std::size_t len = n.size() < kNameCapacity
                                    ? n.size()
                                    : kNameCapacity;
        std::memcpy(name, n.data(), len);
        name[len] = '\0';
    }
};

static_assert(sizeof(TraceEvent) == 64, "TraceEvent must stay one line");

/** Steady-clock nanoseconds (the tracer's time base). */
inline std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * One thread's bounded event buffer. Only the owning thread calls
 * push(); any thread may read size()/dropped() and, after recording
 * has quiesced, the events themselves.
 */
class ThreadBuffer
{
  public:
    ThreadBuffer(std::uint32_t tid, std::string name,
                 std::size_t capacity)
        : events_(capacity), tid_(tid), name_(std::move(name))
    {
    }

    /** Record one event; counts a drop (and keeps the buffer) if full. */
    void
    push(const TraceEvent &event)
    {
        const std::size_t n = size_.load(std::memory_order_relaxed);
        if (n >= events_.size()) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        events_[n] = event;
        size_.store(n + 1, std::memory_order_release);
    }

    /** Events recorded so far (acquire: pairs with push's release). */
    std::size_t
    size() const
    {
        return size_.load(std::memory_order_acquire);
    }

    /** Events rejected because the buffer was full. */
    std::uint64_t
    dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    std::size_t capacity() const { return events_.size(); }
    std::uint32_t tid() const { return tid_; }
    const std::string &threadName() const { return name_; }

    /** Rename the owning thread (registration after lazy creation). */
    void setThreadName(std::string name) { name_ = std::move(name); }

    /** i-th recorded event; valid for i < size(). */
    const TraceEvent &event(std::size_t i) const { return events_[i]; }

  private:
    std::vector<TraceEvent> events_;
    std::atomic<std::size_t> size_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::uint32_t tid_;
    std::string name_;
};

/**
 * The trace recorder: a registry of per-thread buffers behind one
 * global enable flag. Library code records through the free functions
 * below (span/instant/counter), which are no-ops while disabled.
 */
class Tracer
{
  public:
    /** Process-wide tracer used by all instrumentation hooks. */
    static Tracer &global();

    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Start recording. Buffers from a previous enable() are kept (the
     * trace accumulates) unless reset() was called in between.
     */
    void
    enable()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (t0_ns_ == 0)
            t0_ns_ = nowNs();
        enabled_.store(true, std::memory_order_relaxed);
    }

    /** Stop recording (buffers remain readable for export). */
    void
    disable()
    {
        enabled_.store(false, std::memory_order_relaxed);
    }

    /** Whether recording is on (one relaxed load — the hot gate). */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Per-thread buffer capacity (events) for buffers registered after
     * this call; existing buffers keep their size.
     */
    void
    setBufferCapacity(std::size_t events)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        capacity_ = events > 0 ? events : 1;
    }

    /**
     * Register the calling thread under a human-readable name (shown
     * as the Perfetto track name). Threads that record without
     * registering are auto-registered as "thread-<tid>".
     */
    void registerCurrentThread(std::string name);

    /** The calling thread's buffer, registering it if needed. */
    ThreadBuffer &currentBuffer();

    /** Record an event on the calling thread's buffer. */
    void
    record(const TraceEvent &event)
    {
        currentBuffer().push(event);
    }

    /** Trace time origin (first enable(); 0 if never enabled). */
    std::int64_t
    timeOriginNs() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return t0_ns_;
    }

    /** Snapshot of all registered buffers (stable pointers). */
    std::vector<const ThreadBuffer *>
    buffers() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<const ThreadBuffer *> out;
        out.reserve(buffers_.size());
        for (const auto &buffer : buffers_)
            out.push_back(buffer.get());
        return out;
    }

    /** Sum of recorded events across all buffers. */
    std::size_t totalEvents() const;

    /** Sum of dropped events across all buffers. */
    std::uint64_t totalDropped() const;

    /**
     * Discard all buffers and restart the time origin. Must not run
     * concurrently with recording threads; thread-local buffer caches
     * are invalidated via a generation counter.
     */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> generation_{1};
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
    std::size_t capacity_ = 1 << 14;
    std::int64_t t0_ns_ = 0;
    std::uint32_t next_tid_ = 1;
};

/** Record an instant event (no-op while tracing is disabled). */
inline void
instant(std::string_view name, Category cat = Category::User)
{
    Tracer &tracer = Tracer::global();
    if (!tracer.enabled())
        return;
    TraceEvent event;
    event.type = TraceEvent::Type::Instant;
    event.cat = cat;
    event.ts_ns = nowNs();
    event.setName(name);
    tracer.record(event);
}

/** Record a numeric counter sample (no-op while disabled). */
inline void
counterSample(std::string_view name, double value,
              Category cat = Category::Counter)
{
    Tracer &tracer = Tracer::global();
    if (!tracer.enabled())
        return;
    TraceEvent event;
    event.type = TraceEvent::Type::Counter;
    event.cat = cat;
    event.ts_ns = nowNs();
    event.value = value;
    event.setName(name);
    tracer.record(event);
}

/** Record a complete span from externally-measured timestamps. */
inline void
completeSpan(std::string_view name, Category cat, std::int64_t ts_ns,
             std::int64_t dur_ns)
{
    Tracer &tracer = Tracer::global();
    if (!tracer.enabled())
        return;
    TraceEvent event;
    event.type = TraceEvent::Type::Complete;
    event.cat = cat;
    event.ts_ns = ts_ns;
    event.dur_ns = dur_ns;
    event.setName(name);
    tracer.record(event);
}

/**
 * RAII span: stamps on construction, records one Complete event on
 * destruction. Costs one relaxed load when tracing is disabled. The
 * name must outlive the span (string literals and phase names do).
 */
class TraceSpan
{
  public:
    explicit TraceSpan(std::string_view name,
                       Category cat = Category::User)
        : name_(name), cat_(cat),
          active_(Tracer::global().enabled())
    {
        if (active_)
            start_ns_ = nowNs();
    }

    ~TraceSpan()
    {
        if (active_)
            completeSpan(name_, cat_, start_ns_, nowNs() - start_ns_);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    std::string_view name_;
    std::int64_t start_ns_ = 0;
    Category cat_;
    bool active_;
};

} // namespace telemetry
} // namespace rtr

#endif // RTR_TELEMETRY_TRACE_H

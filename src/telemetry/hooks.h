/**
 * @file
 * Telemetry entry points for the ROI hooks (util/roi.h).
 *
 * Kept to two declarations so including this from the widely-used ROI
 * header stays free: the implementations (in the telemetry library)
 * emit roi-begin/roi-end instant events into the tracer and gate the
 * armed perf-counter group (perf_counters.h), both no-ops when neither
 * facility is active.
 */

#ifndef RTR_TELEMETRY_HOOKS_H
#define RTR_TELEMETRY_HOOKS_H

namespace rtr {
namespace telemetry {

/** Called by rtr::roiBegin(): trace instant + enable armed counters. */
void notifyRoiBegin();

/** Called by rtr::roiEnd(): disable armed counters + trace instant. */
void notifyRoiEnd();

} // namespace telemetry
} // namespace rtr

#endif // RTR_TELEMETRY_HOOKS_H

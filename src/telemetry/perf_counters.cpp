#include "telemetry/perf_counters.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "telemetry/trace.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace rtr {
namespace telemetry {

const char *
perfCounterName(PerfCounter counter)
{
    switch (counter) {
      case PerfCounter::Cycles:
        return "cycles";
      case PerfCounter::Instructions:
        return "instructions";
      case PerfCounter::L1dLoads:
        return "l1d_loads";
      case PerfCounter::L1dMisses:
        return "l1d_misses";
      case PerfCounter::LlcLoads:
        return "llc_loads";
      case PerfCounter::LlcMisses:
        return "llc_misses";
      case PerfCounter::BranchMisses:
        return "branch_misses";
    }
    return "unknown";
}

std::optional<double>
PerfSample::ratio(PerfCounter a, PerfCounter b) const
{
    if (!has(a) || !has(b) || get(b) <= 0.0)
        return std::nullopt;
    return get(a) / get(b);
}

std::optional<double>
PerfSample::mpki(PerfCounter counter) const
{
    if (!has(counter) || !has(PerfCounter::Instructions) ||
        get(PerfCounter::Instructions) <= 0.0)
        return std::nullopt;
    return get(counter) * 1000.0 / get(PerfCounter::Instructions);
}

#if defined(__linux__)

namespace {

/** type/config pair of each PerfCounter, in enum order. */
struct EventSpec
{
    std::uint32_t type;
    std::uint64_t config;
};

constexpr std::uint64_t
cacheConfig(std::uint64_t cache, std::uint64_t op, std::uint64_t result)
{
    return cache | (op << 8) | (result << 16);
}

constexpr EventSpec kEventSpecs[kPerfCounterCount] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     cacheConfig(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                 PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {PERF_TYPE_HW_CACHE,
     cacheConfig(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                 PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {PERF_TYPE_HW_CACHE,
     cacheConfig(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                 PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {PERF_TYPE_HW_CACHE,
     cacheConfig(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                 PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};

int
openEvent(const EventSpec &spec, int group_fd)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = spec.type;
    attr.config = spec.config;
    // Count user-space work of this thread only: works at
    // perf_event_paranoid <= 2 and matches the phase timers' scope.
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                       PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    // The group starts disabled; enable()/roiBegin() turn it on.
    attr.disabled = group_fd == -1 ? 1 : 0;
    return static_cast<int>(syscall(SYS_perf_event_open, &attr, 0, -1,
                                    group_fd, 0));
}

} // namespace

bool
PerfCounterGroup::open()
{
    if (open_attempted_)
        return supported();
    open_attempted_ = true;

    if (const char *env = std::getenv("RTR_NO_PERF")) {
        if (env[0] != '\0' && env[0] != '0') {
            reason_ = "disabled by RTR_NO_PERF";
            return false;
        }
    }

    // Leader: cycles. If this fails, the host denies perf entirely
    // (paranoid sysctl, seccomp, no PMU) — report why and stay inert.
    const std::size_t leader =
        static_cast<std::size_t>(PerfCounter::Cycles);
    int fd = openEvent(kEventSpecs[leader], -1);
    if (fd < 0) {
        reason_ = std::string("perf_event_open: ") +
                  std::strerror(errno);
        return false;
    }
    fds_[leader] = fd;
    leader_fd_ = fd;
    ioctl(fd, PERF_EVENT_IOC_ID, &ids_[leader]);

    // Members: best-effort. A host without, say, LLC events still
    // yields IPC and L1D numbers; absent counters read as "n/a".
    for (std::size_t i = 0; i < kPerfCounterCount; ++i) {
        if (i == leader)
            continue;
        fds_[i] = openEvent(kEventSpecs[i], leader_fd_);
        if (fds_[i] >= 0)
            ioctl(fds_[i], PERF_EVENT_IOC_ID, &ids_[i]);
    }
    return true;
}

void
PerfCounterGroup::reset()
{
    if (supported())
        ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
}

void
PerfCounterGroup::enable()
{
    if (supported())
        ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

void
PerfCounterGroup::disable()
{
    if (supported())
        ioctl(leader_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
}

PerfSample
PerfCounterGroup::read() const
{
    PerfSample sample;
    if (!supported())
        return sample;

    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
    // then {value, id} per member.
    std::uint64_t buf[3 + 2 * kPerfCounterCount] = {};
    const ssize_t got = ::read(leader_fd_, buf, sizeof(buf));
    if (got < static_cast<ssize_t>(3 * sizeof(std::uint64_t)))
        return sample;

    const std::uint64_t nr = buf[0];
    const std::uint64_t time_enabled = buf[1];
    const std::uint64_t time_running = buf[2];
    double scale = 1.0;
    if (time_running > 0 && time_running < time_enabled) {
        scale = static_cast<double>(time_enabled) /
                static_cast<double>(time_running);
        sample.multiplexed = true;
    }
    if (time_running == 0)
        return sample; // never scheduled: no counts to report

    for (std::uint64_t m = 0; m < nr && m < kPerfCounterCount; ++m) {
        const std::uint64_t value = buf[3 + 2 * m];
        const std::uint64_t id = buf[3 + 2 * m + 1];
        for (std::size_t i = 0; i < kPerfCounterCount; ++i) {
            if (fds_[i] >= 0 && ids_[i] == id) {
                sample.value[i] = static_cast<double>(value) * scale;
                sample.available[i] = true;
                break;
            }
        }
    }
    return sample;
}

void
PerfCounterGroup::close()
{
    for (int &fd : fds_) {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }
    leader_fd_ = -1;
}

#else // !__linux__

bool
PerfCounterGroup::open()
{
    open_attempted_ = true;
    reason_ = "perf_event_open requires Linux";
    return false;
}

void PerfCounterGroup::reset() {}
void PerfCounterGroup::enable() {}
void PerfCounterGroup::disable() {}

PerfSample
PerfCounterGroup::read() const
{
    return PerfSample{};
}

void
PerfCounterGroup::close()
{
}

#endif // __linux__

PerfCounterGroup::~PerfCounterGroup() { close(); }

namespace {

/** The group gated by the ROI hooks (main-thread use by design). */
PerfCounterGroup *g_roi_group = nullptr;

} // namespace

void
armRoiCounters(PerfCounterGroup *group)
{
    g_roi_group = group;
}

void
notifyRoiBegin()
{
    instant("roi-begin", Category::Roi);
    if (g_roi_group)
        g_roi_group->enable();
}

void
notifyRoiEnd()
{
    if (g_roi_group)
        g_roi_group->disable();
    instant("roi-end", Category::Roi);
}

} // namespace telemetry
} // namespace rtr

#!/usr/bin/env bash
# Local CI: build + ctest across the sanitizer matrix.
#
#   scripts/check.sh              # release asan ubsan tsan scalar nn-node batch-scalar raycast-packet service
#   scripts/check.sh release asan # just those variants
#
# Each variant uses its own build tree (build-check-<variant>) so the
# trees stay warm across runs. TSan runs the thread-focused suites
# (Parallel/Telemetry) — the full suite under TSan is slow and the
# remaining tests are single-threaded by construction. The scalar
# variant builds with -DRTR_FORCE_SCALAR_SIMD=ON so the portable
# fallback of rtr::simd::VecD (the code path non-x86/ARM hosts compile)
# stays green. The nn-node variant reruns the full suite with
# RTR_NN_ENGINE=node so the reference nearest-neighbor engine (the
# default is the leaf-bucketed one) stays green too; it reuses the
# release build tree. The batch-scalar variant does the same with
# RTR_BATCH_ENGINE=scalar, keeping the reference rollout engine (the
# default is the SoA batch engine) green. The raycast-packet variant
# runs the full suite with RTR_RAYCAST=packet in the Release tree
# (every ray cast through the SIMD packet engine) plus the
# thread-focused suites in the TSan tree, since the packet scan path
# runs under parallelForChunks. The service variant smokes
# the planning-as-a-service runtime end to end: the service/MPMC test
# suites plus a bench_service run (its determinism replay exits 2 on
# any divergence) in both the Release and TSan trees.

set -euo pipefail
cd "$(dirname "$0")/.."

variants=("$@")
if [ ${#variants[@]} -eq 0 ]; then
    variants=(release asan ubsan tsan scalar nn-node batch-scalar raycast-packet service)
fi

jobs=$(nproc 2>/dev/null || echo 4)

for variant in "${variants[@]}"; do
    if [ "${variant}" = "raycast-packet" ]; then
        for mode in release tsan; do
            rdir="build-check-${mode}"
            rcmake=(-DCMAKE_BUILD_TYPE=RelWithDebInfo)
            rtest=(--output-on-failure -j "${jobs}")
            [ "${mode}" = "tsan" ] && rcmake+=(-DRTR_TSAN=ON) \
                && rtest+=(-R 'Parallel|Telemetry|Raycast|CastScan')
            echo "==== raycast-packet: configure + build (${rdir}) ===="
            cmake -B "${rdir}" -S . "${rcmake[@]}" > /dev/null
            cmake --build "${rdir}" -j "${jobs}"
            echo "==== raycast-packet: ctest (${mode}) ===="
            env RTR_RAYCAST=packet ctest --test-dir "${rdir}" \
                "${rtest[@]}"
        done
        continue
    fi
    if [ "${variant}" = "service" ]; then
        for mode in release tsan; do
            sdir="build-check-${mode}"
            scmake=(-DCMAKE_BUILD_TYPE=RelWithDebInfo)
            [ "${mode}" = "tsan" ] && scmake+=(-DRTR_TSAN=ON)
            echo "==== service: configure + build (${sdir}) ===="
            cmake -B "${sdir}" -S . "${scmake[@]}" > /dev/null
            cmake --build "${sdir}" -j "${jobs}"
            echo "==== service: ctest (${mode}) ===="
            ctest --test-dir "${sdir}" --output-on-failure -j "${jobs}" \
                -R 'Service|Mpmc'
            echo "==== service: bench_service smoke (${mode}) ===="
            "${sdir}/bench/bench_service" --requests 2000 \
                --json "${sdir}/BENCH_service_smoke.json"
        done
        continue
    fi

    dir="build-check-${variant}"
    cmake_args=(-DCMAKE_BUILD_TYPE=RelWithDebInfo)
    test_args=(--output-on-failure -j "${jobs}")
    env_vars=()
    case "${variant}" in
      release) ;;
      nn-node) dir="build-check-release"
               env_vars=(RTR_NN_ENGINE=node) ;;
      batch-scalar) dir="build-check-release"
               env_vars=(RTR_BATCH_ENGINE=scalar) ;;
      asan)  cmake_args+=(-DRTR_ASAN=ON) ;;
      ubsan) cmake_args+=(-DRTR_UBSAN=ON) ;;
      tsan)  cmake_args+=(-DRTR_TSAN=ON)
             test_args+=(-R 'Parallel|Telemetry|Service|Mpmc') ;;
      scalar) cmake_args+=(-DRTR_FORCE_SCALAR_SIMD=ON) ;;
      *) echo "unknown variant '${variant}'" >&2; exit 2 ;;
    esac

    echo "==== ${variant}: configure + build (${dir}) ===="
    cmake -B "${dir}" -S . "${cmake_args[@]}" > /dev/null
    cmake --build "${dir}" -j "${jobs}"

    echo "==== ${variant}: ctest ===="
    env ${env_vars[@]+"${env_vars[@]}"} ctest --test-dir "${dir}" \
        "${test_args[@]}"
done

echo "==== all variants passed: ${variants[*]} ===="

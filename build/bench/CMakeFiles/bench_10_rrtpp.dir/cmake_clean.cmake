file(REMOVE_RECURSE
  "CMakeFiles/bench_10_rrtpp.dir/bench_10_rrtpp.cpp.o"
  "CMakeFiles/bench_10_rrtpp.dir/bench_10_rrtpp.cpp.o.d"
  "bench_10_rrtpp"
  "bench_10_rrtpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_10_rrtpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

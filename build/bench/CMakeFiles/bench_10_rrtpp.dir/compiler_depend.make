# Empty compiler generated dependencies file for bench_10_rrtpp.
# This may be replaced when dependencies are built.

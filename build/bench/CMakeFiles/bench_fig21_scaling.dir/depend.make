# Empty dependencies file for bench_fig21_scaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_16_bo.dir/bench_16_bo.cpp.o"
  "CMakeFiles/bench_16_bo.dir/bench_16_bo.cpp.o.d"
  "bench_16_bo"
  "bench_16_bo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_16_bo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

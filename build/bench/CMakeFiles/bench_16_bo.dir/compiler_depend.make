# Empty compiler generated dependencies file for bench_16_bo.
# This may be replaced when dependencies are built.

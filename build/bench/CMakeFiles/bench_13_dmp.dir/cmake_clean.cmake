file(REMOVE_RECURSE
  "CMakeFiles/bench_13_dmp.dir/bench_13_dmp.cpp.o"
  "CMakeFiles/bench_13_dmp.dir/bench_13_dmp.cpp.o.d"
  "bench_13_dmp"
  "bench_13_dmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_13_dmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_13_dmp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_15_cem.dir/bench_15_cem.cpp.o"
  "CMakeFiles/bench_15_cem.dir/bench_15_cem.cpp.o.d"
  "bench_15_cem"
  "bench_15_cem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_15_cem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

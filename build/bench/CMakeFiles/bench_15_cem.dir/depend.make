# Empty dependencies file for bench_15_cem.
# This may be replaced when dependencies are built.

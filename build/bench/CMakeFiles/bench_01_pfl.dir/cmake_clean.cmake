file(REMOVE_RECURSE
  "CMakeFiles/bench_01_pfl.dir/bench_01_pfl.cpp.o"
  "CMakeFiles/bench_01_pfl.dir/bench_01_pfl.cpp.o.d"
  "bench_01_pfl"
  "bench_01_pfl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_01_pfl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_01_pfl.
# This may be replaced when dependencies are built.

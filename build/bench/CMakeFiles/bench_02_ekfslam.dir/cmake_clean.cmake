file(REMOVE_RECURSE
  "CMakeFiles/bench_02_ekfslam.dir/bench_02_ekfslam.cpp.o"
  "CMakeFiles/bench_02_ekfslam.dir/bench_02_ekfslam.cpp.o.d"
  "bench_02_ekfslam"
  "bench_02_ekfslam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_02_ekfslam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

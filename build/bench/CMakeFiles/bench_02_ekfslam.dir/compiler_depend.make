# Empty compiler generated dependencies file for bench_02_ekfslam.
# This may be replaced when dependencies are built.

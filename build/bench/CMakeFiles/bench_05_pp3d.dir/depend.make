# Empty dependencies file for bench_05_pp3d.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_05_pp3d.dir/bench_05_pp3d.cpp.o"
  "CMakeFiles/bench_05_pp3d.dir/bench_05_pp3d.cpp.o.d"
  "bench_05_pp3d"
  "bench_05_pp3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_05_pp3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_11_sym_blkw.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_11_sym_blkw.dir/bench_11_sym_blkw.cpp.o"
  "CMakeFiles/bench_11_sym_blkw.dir/bench_11_sym_blkw.cpp.o.d"
  "bench_11_sym_blkw"
  "bench_11_sym_blkw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_11_sym_blkw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_06_movtar.
# This may be replaced when dependencies are built.

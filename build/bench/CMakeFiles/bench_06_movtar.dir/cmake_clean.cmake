file(REMOVE_RECURSE
  "CMakeFiles/bench_06_movtar.dir/bench_06_movtar.cpp.o"
  "CMakeFiles/bench_06_movtar.dir/bench_06_movtar.cpp.o.d"
  "bench_06_movtar"
  "bench_06_movtar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_06_movtar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

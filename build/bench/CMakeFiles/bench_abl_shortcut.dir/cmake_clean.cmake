file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_shortcut.dir/bench_abl_shortcut.cpp.o"
  "CMakeFiles/bench_abl_shortcut.dir/bench_abl_shortcut.cpp.o.d"
  "bench_abl_shortcut"
  "bench_abl_shortcut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_shortcut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

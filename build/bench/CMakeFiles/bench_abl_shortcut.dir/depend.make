# Empty dependencies file for bench_abl_shortcut.
# This may be replaced when dependencies are built.

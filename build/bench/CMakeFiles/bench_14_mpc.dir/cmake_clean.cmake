file(REMOVE_RECURSE
  "CMakeFiles/bench_14_mpc.dir/bench_14_mpc.cpp.o"
  "CMakeFiles/bench_14_mpc.dir/bench_14_mpc.cpp.o.d"
  "bench_14_mpc"
  "bench_14_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_14_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_14_mpc.
# This may be replaced when dependencies are built.

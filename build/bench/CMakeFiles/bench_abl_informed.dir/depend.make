# Empty dependencies file for bench_abl_informed.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_informed.dir/bench_abl_informed.cpp.o"
  "CMakeFiles/bench_abl_informed.dir/bench_abl_informed.cpp.o.d"
  "bench_abl_informed"
  "bench_abl_informed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_informed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

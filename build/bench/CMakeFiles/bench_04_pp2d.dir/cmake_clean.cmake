file(REMOVE_RECURSE
  "CMakeFiles/bench_04_pp2d.dir/bench_04_pp2d.cpp.o"
  "CMakeFiles/bench_04_pp2d.dir/bench_04_pp2d.cpp.o.d"
  "bench_04_pp2d"
  "bench_04_pp2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_04_pp2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_04_pp2d.
# This may be replaced when dependencies are built.

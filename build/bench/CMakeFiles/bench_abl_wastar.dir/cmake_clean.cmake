file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_wastar.dir/bench_abl_wastar.cpp.o"
  "CMakeFiles/bench_abl_wastar.dir/bench_abl_wastar.cpp.o.d"
  "bench_abl_wastar"
  "bench_abl_wastar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_wastar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

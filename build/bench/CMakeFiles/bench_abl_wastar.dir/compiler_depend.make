# Empty compiler generated dependencies file for bench_abl_wastar.
# This may be replaced when dependencies are built.

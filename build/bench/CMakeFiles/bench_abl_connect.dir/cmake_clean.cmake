file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_connect.dir/bench_abl_connect.cpp.o"
  "CMakeFiles/bench_abl_connect.dir/bench_abl_connect.cpp.o.d"
  "bench_abl_connect"
  "bench_abl_connect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_connect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_abl_connect.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_12_sym_fext.dir/bench_12_sym_fext.cpp.o"
  "CMakeFiles/bench_12_sym_fext.dir/bench_12_sym_fext.cpp.o.d"
  "bench_12_sym_fext"
  "bench_12_sym_fext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_12_sym_fext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

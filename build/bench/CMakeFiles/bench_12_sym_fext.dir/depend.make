# Empty dependencies file for bench_12_sym_fext.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_07_prm.dir/bench_07_prm.cpp.o"
  "CMakeFiles/bench_07_prm.dir/bench_07_prm.cpp.o.d"
  "bench_07_prm"
  "bench_07_prm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_07_prm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

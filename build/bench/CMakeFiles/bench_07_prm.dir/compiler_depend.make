# Empty compiler generated dependencies file for bench_07_prm.
# This may be replaced when dependencies are built.

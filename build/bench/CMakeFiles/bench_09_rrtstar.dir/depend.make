# Empty dependencies file for bench_09_rrtstar.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_09_rrtstar.dir/bench_09_rrtstar.cpp.o"
  "CMakeFiles/bench_09_rrtstar.dir/bench_09_rrtstar.cpp.o.d"
  "bench_09_rrtstar"
  "bench_09_rrtstar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_09_rrtstar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

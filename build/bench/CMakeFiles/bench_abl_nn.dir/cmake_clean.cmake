file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_nn.dir/bench_abl_nn.cpp.o"
  "CMakeFiles/bench_abl_nn.dir/bench_abl_nn.cpp.o.d"
  "bench_abl_nn"
  "bench_abl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

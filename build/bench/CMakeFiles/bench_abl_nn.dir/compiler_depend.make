# Empty compiler generated dependencies file for bench_abl_nn.
# This may be replaced when dependencies are built.

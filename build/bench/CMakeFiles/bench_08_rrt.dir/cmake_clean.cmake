file(REMOVE_RECURSE
  "CMakeFiles/bench_08_rrt.dir/bench_08_rrt.cpp.o"
  "CMakeFiles/bench_08_rrt.dir/bench_08_rrt.cpp.o.d"
  "bench_08_rrt"
  "bench_08_rrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_08_rrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_08_rrt.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_03_srec.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_03_srec.dir/bench_03_srec.cpp.o"
  "CMakeFiles/bench_03_srec.dir/bench_03_srec.cpp.o.d"
  "bench_03_srec"
  "bench_03_srec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_03_srec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

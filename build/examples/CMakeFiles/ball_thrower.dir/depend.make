# Empty dependencies file for ball_thrower.
# This may be replaced when dependencies are built.

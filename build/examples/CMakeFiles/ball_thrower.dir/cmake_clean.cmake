file(REMOVE_RECURSE
  "CMakeFiles/ball_thrower.dir/ball_thrower.cpp.o"
  "CMakeFiles/ball_thrower.dir/ball_thrower.cpp.o.d"
  "ball_thrower"
  "ball_thrower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ball_thrower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for arm_manipulation.
# This may be replaced when dependencies are built.

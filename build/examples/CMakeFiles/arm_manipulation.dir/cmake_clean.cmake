file(REMOVE_RECURSE
  "CMakeFiles/arm_manipulation.dir/arm_manipulation.cpp.o"
  "CMakeFiles/arm_manipulation.dir/arm_manipulation.cpp.o.d"
  "arm_manipulation"
  "arm_manipulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arm_manipulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

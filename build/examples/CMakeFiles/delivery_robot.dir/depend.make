# Empty dependencies file for delivery_robot.
# This may be replaced when dependencies are built.

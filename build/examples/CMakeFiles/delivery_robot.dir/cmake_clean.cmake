file(REMOVE_RECURSE
  "CMakeFiles/delivery_robot.dir/delivery_robot.cpp.o"
  "CMakeFiles/delivery_robot.dir/delivery_robot.cpp.o.d"
  "delivery_robot"
  "delivery_robot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delivery_robot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/warehouse_tasking.dir/warehouse_tasking.cpp.o"
  "CMakeFiles/warehouse_tasking.dir/warehouse_tasking.cpp.o.d"
  "warehouse_tasking"
  "warehouse_tasking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_tasking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for warehouse_tasking.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_scene_rec.dir/test_scene_rec.cpp.o"
  "CMakeFiles/test_scene_rec.dir/test_scene_rec.cpp.o.d"
  "test_scene_rec"
  "test_scene_rec.pdb"
  "test_scene_rec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scene_rec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

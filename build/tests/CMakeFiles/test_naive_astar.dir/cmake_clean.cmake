file(REMOVE_RECURSE
  "CMakeFiles/test_naive_astar.dir/test_naive_astar.cpp.o"
  "CMakeFiles/test_naive_astar.dir/test_naive_astar.cpp.o.d"
  "test_naive_astar"
  "test_naive_astar.pdb"
  "test_naive_astar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_naive_astar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

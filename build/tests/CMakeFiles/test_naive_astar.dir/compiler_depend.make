# Empty compiler generated dependencies file for test_naive_astar.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_ekf_slam.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_ekf_slam.dir/test_ekf_slam.cpp.o"
  "CMakeFiles/test_ekf_slam.dir/test_ekf_slam.cpp.o.d"
  "test_ekf_slam"
  "test_ekf_slam.pdb"
  "test_ekf_slam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ekf_slam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

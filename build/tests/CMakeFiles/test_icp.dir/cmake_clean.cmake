file(REMOVE_RECURSE
  "CMakeFiles/test_icp.dir/test_icp.cpp.o"
  "CMakeFiles/test_icp.dir/test_icp.cpp.o.d"
  "test_icp"
  "test_icp.pdb"
  "test_icp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_icp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

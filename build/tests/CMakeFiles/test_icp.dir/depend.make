# Empty dependencies file for test_icp.
# This may be replaced when dependencies are built.

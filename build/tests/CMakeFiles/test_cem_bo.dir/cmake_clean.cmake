file(REMOVE_RECURSE
  "CMakeFiles/test_cem_bo.dir/test_cem_bo.cpp.o"
  "CMakeFiles/test_cem_bo.dir/test_cem_bo.cpp.o.d"
  "test_cem_bo"
  "test_cem_bo.pdb"
  "test_cem_bo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cem_bo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

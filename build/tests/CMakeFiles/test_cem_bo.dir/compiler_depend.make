# Empty compiler generated dependencies file for test_cem_bo.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_dmp.
# This may be replaced when dependencies are built.

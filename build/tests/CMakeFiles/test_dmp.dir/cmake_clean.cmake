file(REMOVE_RECURSE
  "CMakeFiles/test_dmp.dir/test_dmp.cpp.o"
  "CMakeFiles/test_dmp.dir/test_dmp.cpp.o.d"
  "test_dmp"
  "test_dmp.pdb"
  "test_dmp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

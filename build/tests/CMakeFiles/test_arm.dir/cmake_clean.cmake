file(REMOVE_RECURSE
  "CMakeFiles/test_arm.dir/test_arm.cpp.o"
  "CMakeFiles/test_arm.dir/test_arm.cpp.o.d"
  "test_arm"
  "test_arm.pdb"
  "test_arm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_spacetime.dir/test_spacetime.cpp.o"
  "CMakeFiles/test_spacetime.dir/test_spacetime.cpp.o.d"
  "test_spacetime"
  "test_spacetime.pdb"
  "test_spacetime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spacetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_spacetime.
# This may be replaced when dependencies are built.

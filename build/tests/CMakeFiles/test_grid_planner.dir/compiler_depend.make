# Empty compiler generated dependencies file for test_grid_planner.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_grid_planner.dir/test_grid_planner.cpp.o"
  "CMakeFiles/test_grid_planner.dir/test_grid_planner.cpp.o.d"
  "test_grid_planner"
  "test_grid_planner.pdb"
  "test_grid_planner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_geom.cpp" "tests/CMakeFiles/test_geom.dir/test_geom.cpp.o" "gcc" "tests/CMakeFiles/test_geom.dir/test_geom.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/rtr_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/perception/CMakeFiles/rtr_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/rtr_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/rtr_search.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/rtr_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/rtr_control.dir/DependInfo.cmake"
  "/root/repo/build/src/arm/CMakeFiles/rtr_arm.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/rtr_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/pointcloud/CMakeFiles/rtr_pointcloud.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rtr_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rtr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

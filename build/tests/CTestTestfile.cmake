# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_grid[1]_include.cmake")
include("/root/repo/build/tests/test_raycast[1]_include.cmake")
include("/root/repo/build/tests/test_footprint[1]_include.cmake")
include("/root/repo/build/tests/test_distance_transform[1]_include.cmake")
include("/root/repo/build/tests/test_kdtree[1]_include.cmake")
include("/root/repo/build/tests/test_pointcloud[1]_include.cmake")
include("/root/repo/build/tests/test_icp[1]_include.cmake")
include("/root/repo/build/tests/test_search[1]_include.cmake")
include("/root/repo/build/tests/test_grid_planner[1]_include.cmake")
include("/root/repo/build/tests/test_spacetime[1]_include.cmake")
include("/root/repo/build/tests/test_arm[1]_include.cmake")
include("/root/repo/build/tests/test_plan[1]_include.cmake")
include("/root/repo/build/tests/test_symbolic[1]_include.cmake")
include("/root/repo/build/tests/test_particle_filter[1]_include.cmake")
include("/root/repo/build/tests/test_ekf_slam[1]_include.cmake")
include("/root/repo/build/tests/test_scene_rec[1]_include.cmake")
include("/root/repo/build/tests/test_dmp[1]_include.cmake")
include("/root/repo/build/tests/test_mpc[1]_include.cmake")
include("/root/repo/build/tests/test_cem_bo[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_naive_astar[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_failures[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions2[1]_include.cmake")

# Empty compiler generated dependencies file for rtr_perception.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librtr_perception.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perception/ekf_slam.cpp" "src/perception/CMakeFiles/rtr_perception.dir/ekf_slam.cpp.o" "gcc" "src/perception/CMakeFiles/rtr_perception.dir/ekf_slam.cpp.o.d"
  "/root/repo/src/perception/particle_filter.cpp" "src/perception/CMakeFiles/rtr_perception.dir/particle_filter.cpp.o" "gcc" "src/perception/CMakeFiles/rtr_perception.dir/particle_filter.cpp.o.d"
  "/root/repo/src/perception/scene_reconstruction.cpp" "src/perception/CMakeFiles/rtr_perception.dir/scene_reconstruction.cpp.o" "gcc" "src/perception/CMakeFiles/rtr_perception.dir/scene_reconstruction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/rtr_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rtr_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/pointcloud/CMakeFiles/rtr_pointcloud.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rtr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/rtr_perception.dir/ekf_slam.cpp.o"
  "CMakeFiles/rtr_perception.dir/ekf_slam.cpp.o.d"
  "CMakeFiles/rtr_perception.dir/particle_filter.cpp.o"
  "CMakeFiles/rtr_perception.dir/particle_filter.cpp.o.d"
  "CMakeFiles/rtr_perception.dir/scene_reconstruction.cpp.o"
  "CMakeFiles/rtr_perception.dir/scene_reconstruction.cpp.o.d"
  "librtr_perception.a"
  "librtr_perception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_perception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

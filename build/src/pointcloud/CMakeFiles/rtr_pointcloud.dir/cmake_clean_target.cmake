file(REMOVE_RECURSE
  "librtr_pointcloud.a"
)

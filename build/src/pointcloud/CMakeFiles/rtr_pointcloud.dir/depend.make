# Empty dependencies file for rtr_pointcloud.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rtr_pointcloud.dir/icp.cpp.o"
  "CMakeFiles/rtr_pointcloud.dir/icp.cpp.o.d"
  "CMakeFiles/rtr_pointcloud.dir/point_cloud.cpp.o"
  "CMakeFiles/rtr_pointcloud.dir/point_cloud.cpp.o.d"
  "CMakeFiles/rtr_pointcloud.dir/scene_gen.cpp.o"
  "CMakeFiles/rtr_pointcloud.dir/scene_gen.cpp.o.d"
  "librtr_pointcloud.a"
  "librtr_pointcloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_pointcloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

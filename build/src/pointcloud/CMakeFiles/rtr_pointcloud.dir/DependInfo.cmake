
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pointcloud/icp.cpp" "src/pointcloud/CMakeFiles/rtr_pointcloud.dir/icp.cpp.o" "gcc" "src/pointcloud/CMakeFiles/rtr_pointcloud.dir/icp.cpp.o.d"
  "/root/repo/src/pointcloud/point_cloud.cpp" "src/pointcloud/CMakeFiles/rtr_pointcloud.dir/point_cloud.cpp.o" "gcc" "src/pointcloud/CMakeFiles/rtr_pointcloud.dir/point_cloud.cpp.o.d"
  "/root/repo/src/pointcloud/scene_gen.cpp" "src/pointcloud/CMakeFiles/rtr_pointcloud.dir/scene_gen.cpp.o" "gcc" "src/pointcloud/CMakeFiles/rtr_pointcloud.dir/scene_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/rtr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rtr_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

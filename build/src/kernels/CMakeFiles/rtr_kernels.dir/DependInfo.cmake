
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/kernel.cpp" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel.cpp.o" "gcc" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel.cpp.o.d"
  "/root/repo/src/kernels/kernel_bo.cpp" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_bo.cpp.o" "gcc" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_bo.cpp.o.d"
  "/root/repo/src/kernels/kernel_cem.cpp" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_cem.cpp.o" "gcc" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_cem.cpp.o.d"
  "/root/repo/src/kernels/kernel_dmp.cpp" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_dmp.cpp.o" "gcc" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_dmp.cpp.o.d"
  "/root/repo/src/kernels/kernel_ekfslam.cpp" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_ekfslam.cpp.o" "gcc" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_ekfslam.cpp.o.d"
  "/root/repo/src/kernels/kernel_movtar.cpp" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_movtar.cpp.o" "gcc" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_movtar.cpp.o.d"
  "/root/repo/src/kernels/kernel_mpc.cpp" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_mpc.cpp.o" "gcc" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_mpc.cpp.o.d"
  "/root/repo/src/kernels/kernel_pfl.cpp" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_pfl.cpp.o" "gcc" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_pfl.cpp.o.d"
  "/root/repo/src/kernels/kernel_pp2d.cpp" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_pp2d.cpp.o" "gcc" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_pp2d.cpp.o.d"
  "/root/repo/src/kernels/kernel_pp3d.cpp" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_pp3d.cpp.o" "gcc" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_pp3d.cpp.o.d"
  "/root/repo/src/kernels/kernel_prm.cpp" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_prm.cpp.o" "gcc" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_prm.cpp.o.d"
  "/root/repo/src/kernels/kernel_rrt.cpp" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_rrt.cpp.o" "gcc" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_rrt.cpp.o.d"
  "/root/repo/src/kernels/kernel_rrtpp.cpp" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_rrtpp.cpp.o" "gcc" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_rrtpp.cpp.o.d"
  "/root/repo/src/kernels/kernel_rrtstar.cpp" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_rrtstar.cpp.o" "gcc" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_rrtstar.cpp.o.d"
  "/root/repo/src/kernels/kernel_srec.cpp" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_srec.cpp.o" "gcc" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_srec.cpp.o.d"
  "/root/repo/src/kernels/kernel_sym.cpp" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_sym.cpp.o" "gcc" "src/kernels/CMakeFiles/rtr_kernels.dir/kernel_sym.cpp.o.d"
  "/root/repo/src/kernels/registry.cpp" "src/kernels/CMakeFiles/rtr_kernels.dir/registry.cpp.o" "gcc" "src/kernels/CMakeFiles/rtr_kernels.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perception/CMakeFiles/rtr_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/rtr_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/rtr_search.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/rtr_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/rtr_control.dir/DependInfo.cmake"
  "/root/repo/build/src/arm/CMakeFiles/rtr_arm.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/rtr_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/pointcloud/CMakeFiles/rtr_pointcloud.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rtr_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rtr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "librtr_kernels.a"
)

# Empty dependencies file for rtr_kernels.
# This may be replaced when dependencies are built.

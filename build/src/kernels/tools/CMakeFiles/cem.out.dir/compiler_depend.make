# Empty compiler generated dependencies file for cem.out.
# This may be replaced when dependencies are built.

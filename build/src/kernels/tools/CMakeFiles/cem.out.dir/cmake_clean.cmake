file(REMOVE_RECURSE
  "CMakeFiles/cem.out.dir/kernel_main.cpp.o"
  "CMakeFiles/cem.out.dir/kernel_main.cpp.o.d"
  "cem.out"
  "cem.out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cem.out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

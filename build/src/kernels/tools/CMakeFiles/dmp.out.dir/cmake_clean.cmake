file(REMOVE_RECURSE
  "CMakeFiles/dmp.out.dir/kernel_main.cpp.o"
  "CMakeFiles/dmp.out.dir/kernel_main.cpp.o.d"
  "dmp.out"
  "dmp.out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmp.out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for dmp.out.
# This may be replaced when dependencies are built.

# Empty dependencies file for pp3d.out.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pp3d.out.dir/kernel_main.cpp.o"
  "CMakeFiles/pp3d.out.dir/kernel_main.cpp.o.d"
  "pp3d.out"
  "pp3d.out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp3d.out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

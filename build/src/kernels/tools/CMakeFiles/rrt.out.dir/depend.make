# Empty dependencies file for rrt.out.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rrt.out.dir/kernel_main.cpp.o"
  "CMakeFiles/rrt.out.dir/kernel_main.cpp.o.d"
  "rrt.out"
  "rrt.out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrt.out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

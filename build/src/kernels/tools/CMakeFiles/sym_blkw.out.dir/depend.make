# Empty dependencies file for sym_blkw.out.
# This may be replaced when dependencies are built.

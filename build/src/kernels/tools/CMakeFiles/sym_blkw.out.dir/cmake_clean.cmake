file(REMOVE_RECURSE
  "CMakeFiles/sym_blkw.out.dir/kernel_main.cpp.o"
  "CMakeFiles/sym_blkw.out.dir/kernel_main.cpp.o.d"
  "sym_blkw.out"
  "sym_blkw.out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sym_blkw.out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for srec.out.
# This may be replaced when dependencies are built.

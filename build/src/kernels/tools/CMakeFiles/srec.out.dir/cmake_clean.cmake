file(REMOVE_RECURSE
  "CMakeFiles/srec.out.dir/kernel_main.cpp.o"
  "CMakeFiles/srec.out.dir/kernel_main.cpp.o.d"
  "srec.out"
  "srec.out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srec.out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

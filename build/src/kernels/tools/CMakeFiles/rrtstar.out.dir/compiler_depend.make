# Empty compiler generated dependencies file for rrtstar.out.
# This may be replaced when dependencies are built.

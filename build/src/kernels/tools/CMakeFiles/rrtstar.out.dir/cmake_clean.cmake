file(REMOVE_RECURSE
  "CMakeFiles/rrtstar.out.dir/kernel_main.cpp.o"
  "CMakeFiles/rrtstar.out.dir/kernel_main.cpp.o.d"
  "rrtstar.out"
  "rrtstar.out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrtstar.out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for prm.out.
# This may be replaced when dependencies are built.

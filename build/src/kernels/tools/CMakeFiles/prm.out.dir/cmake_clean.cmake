file(REMOVE_RECURSE
  "CMakeFiles/prm.out.dir/kernel_main.cpp.o"
  "CMakeFiles/prm.out.dir/kernel_main.cpp.o.d"
  "prm.out"
  "prm.out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prm.out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

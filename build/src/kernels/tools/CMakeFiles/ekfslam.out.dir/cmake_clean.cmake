file(REMOVE_RECURSE
  "CMakeFiles/ekfslam.out.dir/kernel_main.cpp.o"
  "CMakeFiles/ekfslam.out.dir/kernel_main.cpp.o.d"
  "ekfslam.out"
  "ekfslam.out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ekfslam.out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

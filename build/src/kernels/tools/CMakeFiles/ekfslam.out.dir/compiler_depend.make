# Empty compiler generated dependencies file for ekfslam.out.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for sym_fext.out.
# This may be replaced when dependencies are built.

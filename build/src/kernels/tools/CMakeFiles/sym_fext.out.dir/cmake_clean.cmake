file(REMOVE_RECURSE
  "CMakeFiles/sym_fext.out.dir/kernel_main.cpp.o"
  "CMakeFiles/sym_fext.out.dir/kernel_main.cpp.o.d"
  "sym_fext.out"
  "sym_fext.out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sym_fext.out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bo.out.
# This may be replaced when dependencies are built.

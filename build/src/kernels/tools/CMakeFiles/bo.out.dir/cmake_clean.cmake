file(REMOVE_RECURSE
  "CMakeFiles/bo.out.dir/kernel_main.cpp.o"
  "CMakeFiles/bo.out.dir/kernel_main.cpp.o.d"
  "bo.out"
  "bo.out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bo.out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

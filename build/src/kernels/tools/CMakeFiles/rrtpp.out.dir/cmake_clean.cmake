file(REMOVE_RECURSE
  "CMakeFiles/rrtpp.out.dir/kernel_main.cpp.o"
  "CMakeFiles/rrtpp.out.dir/kernel_main.cpp.o.d"
  "rrtpp.out"
  "rrtpp.out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrtpp.out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

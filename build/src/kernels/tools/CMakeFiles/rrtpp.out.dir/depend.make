# Empty dependencies file for rrtpp.out.
# This may be replaced when dependencies are built.

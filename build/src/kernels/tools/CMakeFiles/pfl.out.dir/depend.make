# Empty dependencies file for pfl.out.
# This may be replaced when dependencies are built.

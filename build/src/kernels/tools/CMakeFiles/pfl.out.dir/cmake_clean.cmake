file(REMOVE_RECURSE
  "CMakeFiles/pfl.out.dir/kernel_main.cpp.o"
  "CMakeFiles/pfl.out.dir/kernel_main.cpp.o.d"
  "pfl.out"
  "pfl.out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfl.out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mpc.out.
# This may be replaced when dependencies are built.

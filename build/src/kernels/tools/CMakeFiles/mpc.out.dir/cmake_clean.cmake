file(REMOVE_RECURSE
  "CMakeFiles/mpc.out.dir/kernel_main.cpp.o"
  "CMakeFiles/mpc.out.dir/kernel_main.cpp.o.d"
  "mpc.out"
  "mpc.out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc.out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

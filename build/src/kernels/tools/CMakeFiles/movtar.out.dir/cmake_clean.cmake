file(REMOVE_RECURSE
  "CMakeFiles/movtar.out.dir/kernel_main.cpp.o"
  "CMakeFiles/movtar.out.dir/kernel_main.cpp.o.d"
  "movtar.out"
  "movtar.out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movtar.out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for movtar.out.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pp2d.out.dir/kernel_main.cpp.o"
  "CMakeFiles/pp2d.out.dir/kernel_main.cpp.o.d"
  "pp2d.out"
  "pp2d.out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp2d.out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

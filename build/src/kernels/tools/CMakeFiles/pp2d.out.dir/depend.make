# Empty dependencies file for pp2d.out.
# This may be replaced when dependencies are built.

# Empty dependencies file for rtr_linalg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rtr_linalg.dir/decomp.cpp.o"
  "CMakeFiles/rtr_linalg.dir/decomp.cpp.o.d"
  "CMakeFiles/rtr_linalg.dir/eigen.cpp.o"
  "CMakeFiles/rtr_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/rtr_linalg.dir/matrix.cpp.o"
  "CMakeFiles/rtr_linalg.dir/matrix.cpp.o.d"
  "librtr_linalg.a"
  "librtr_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

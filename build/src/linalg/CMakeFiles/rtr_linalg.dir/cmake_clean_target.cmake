file(REMOVE_RECURSE
  "librtr_linalg.a"
)

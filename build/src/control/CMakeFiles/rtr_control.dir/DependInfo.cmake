
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/ball_throw.cpp" "src/control/CMakeFiles/rtr_control.dir/ball_throw.cpp.o" "gcc" "src/control/CMakeFiles/rtr_control.dir/ball_throw.cpp.o.d"
  "/root/repo/src/control/bayes_opt.cpp" "src/control/CMakeFiles/rtr_control.dir/bayes_opt.cpp.o" "gcc" "src/control/CMakeFiles/rtr_control.dir/bayes_opt.cpp.o.d"
  "/root/repo/src/control/cem.cpp" "src/control/CMakeFiles/rtr_control.dir/cem.cpp.o" "gcc" "src/control/CMakeFiles/rtr_control.dir/cem.cpp.o.d"
  "/root/repo/src/control/dmp.cpp" "src/control/CMakeFiles/rtr_control.dir/dmp.cpp.o" "gcc" "src/control/CMakeFiles/rtr_control.dir/dmp.cpp.o.d"
  "/root/repo/src/control/gaussian_process.cpp" "src/control/CMakeFiles/rtr_control.dir/gaussian_process.cpp.o" "gcc" "src/control/CMakeFiles/rtr_control.dir/gaussian_process.cpp.o.d"
  "/root/repo/src/control/mpc.cpp" "src/control/CMakeFiles/rtr_control.dir/mpc.cpp.o" "gcc" "src/control/CMakeFiles/rtr_control.dir/mpc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/rtr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rtr_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/rtr_control.dir/ball_throw.cpp.o"
  "CMakeFiles/rtr_control.dir/ball_throw.cpp.o.d"
  "CMakeFiles/rtr_control.dir/bayes_opt.cpp.o"
  "CMakeFiles/rtr_control.dir/bayes_opt.cpp.o.d"
  "CMakeFiles/rtr_control.dir/cem.cpp.o"
  "CMakeFiles/rtr_control.dir/cem.cpp.o.d"
  "CMakeFiles/rtr_control.dir/dmp.cpp.o"
  "CMakeFiles/rtr_control.dir/dmp.cpp.o.d"
  "CMakeFiles/rtr_control.dir/gaussian_process.cpp.o"
  "CMakeFiles/rtr_control.dir/gaussian_process.cpp.o.d"
  "CMakeFiles/rtr_control.dir/mpc.cpp.o"
  "CMakeFiles/rtr_control.dir/mpc.cpp.o.d"
  "librtr_control.a"
  "librtr_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

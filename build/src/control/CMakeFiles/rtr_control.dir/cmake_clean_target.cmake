file(REMOVE_RECURSE
  "librtr_control.a"
)

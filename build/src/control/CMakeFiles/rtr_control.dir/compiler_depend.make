# Empty compiler generated dependencies file for rtr_control.
# This may be replaced when dependencies are built.

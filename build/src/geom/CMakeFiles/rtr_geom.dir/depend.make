# Empty dependencies file for rtr_geom.
# This may be replaced when dependencies are built.

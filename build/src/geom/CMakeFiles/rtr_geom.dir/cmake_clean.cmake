file(REMOVE_RECURSE
  "CMakeFiles/rtr_geom.dir/segment.cpp.o"
  "CMakeFiles/rtr_geom.dir/segment.cpp.o.d"
  "librtr_geom.a"
  "librtr_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librtr_geom.a"
)

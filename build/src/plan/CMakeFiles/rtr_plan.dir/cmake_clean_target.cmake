file(REMOVE_RECURSE
  "librtr_plan.a"
)

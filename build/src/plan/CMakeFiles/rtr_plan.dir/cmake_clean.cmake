file(REMOVE_RECURSE
  "CMakeFiles/rtr_plan.dir/prm.cpp.o"
  "CMakeFiles/rtr_plan.dir/prm.cpp.o.d"
  "CMakeFiles/rtr_plan.dir/rrt.cpp.o"
  "CMakeFiles/rtr_plan.dir/rrt.cpp.o.d"
  "CMakeFiles/rtr_plan.dir/rrt_connect.cpp.o"
  "CMakeFiles/rtr_plan.dir/rrt_connect.cpp.o.d"
  "CMakeFiles/rtr_plan.dir/rrt_star.cpp.o"
  "CMakeFiles/rtr_plan.dir/rrt_star.cpp.o.d"
  "CMakeFiles/rtr_plan.dir/shortcut.cpp.o"
  "CMakeFiles/rtr_plan.dir/shortcut.cpp.o.d"
  "librtr_plan.a"
  "librtr_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

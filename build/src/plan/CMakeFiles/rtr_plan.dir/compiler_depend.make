# Empty compiler generated dependencies file for rtr_plan.
# This may be replaced when dependencies are built.

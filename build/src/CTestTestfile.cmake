# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geom")
subdirs("linalg")
subdirs("grid")
subdirs("pointcloud")
subdirs("search")
subdirs("arm")
subdirs("plan")
subdirs("symbolic")
subdirs("perception")
subdirs("control")
subdirs("kernels")

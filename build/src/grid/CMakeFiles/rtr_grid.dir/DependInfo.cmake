
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/distance_transform.cpp" "src/grid/CMakeFiles/rtr_grid.dir/distance_transform.cpp.o" "gcc" "src/grid/CMakeFiles/rtr_grid.dir/distance_transform.cpp.o.d"
  "/root/repo/src/grid/footprint.cpp" "src/grid/CMakeFiles/rtr_grid.dir/footprint.cpp.o" "gcc" "src/grid/CMakeFiles/rtr_grid.dir/footprint.cpp.o.d"
  "/root/repo/src/grid/map_gen.cpp" "src/grid/CMakeFiles/rtr_grid.dir/map_gen.cpp.o" "gcc" "src/grid/CMakeFiles/rtr_grid.dir/map_gen.cpp.o.d"
  "/root/repo/src/grid/map_io.cpp" "src/grid/CMakeFiles/rtr_grid.dir/map_io.cpp.o" "gcc" "src/grid/CMakeFiles/rtr_grid.dir/map_io.cpp.o.d"
  "/root/repo/src/grid/occupancy_grid2d.cpp" "src/grid/CMakeFiles/rtr_grid.dir/occupancy_grid2d.cpp.o" "gcc" "src/grid/CMakeFiles/rtr_grid.dir/occupancy_grid2d.cpp.o.d"
  "/root/repo/src/grid/occupancy_grid3d.cpp" "src/grid/CMakeFiles/rtr_grid.dir/occupancy_grid3d.cpp.o" "gcc" "src/grid/CMakeFiles/rtr_grid.dir/occupancy_grid3d.cpp.o.d"
  "/root/repo/src/grid/raycast.cpp" "src/grid/CMakeFiles/rtr_grid.dir/raycast.cpp.o" "gcc" "src/grid/CMakeFiles/rtr_grid.dir/raycast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/rtr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

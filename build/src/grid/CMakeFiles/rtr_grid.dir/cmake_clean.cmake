file(REMOVE_RECURSE
  "CMakeFiles/rtr_grid.dir/distance_transform.cpp.o"
  "CMakeFiles/rtr_grid.dir/distance_transform.cpp.o.d"
  "CMakeFiles/rtr_grid.dir/footprint.cpp.o"
  "CMakeFiles/rtr_grid.dir/footprint.cpp.o.d"
  "CMakeFiles/rtr_grid.dir/map_gen.cpp.o"
  "CMakeFiles/rtr_grid.dir/map_gen.cpp.o.d"
  "CMakeFiles/rtr_grid.dir/map_io.cpp.o"
  "CMakeFiles/rtr_grid.dir/map_io.cpp.o.d"
  "CMakeFiles/rtr_grid.dir/occupancy_grid2d.cpp.o"
  "CMakeFiles/rtr_grid.dir/occupancy_grid2d.cpp.o.d"
  "CMakeFiles/rtr_grid.dir/occupancy_grid3d.cpp.o"
  "CMakeFiles/rtr_grid.dir/occupancy_grid3d.cpp.o.d"
  "CMakeFiles/rtr_grid.dir/raycast.cpp.o"
  "CMakeFiles/rtr_grid.dir/raycast.cpp.o.d"
  "librtr_grid.a"
  "librtr_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

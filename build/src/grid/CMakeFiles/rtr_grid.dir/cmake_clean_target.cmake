file(REMOVE_RECURSE
  "librtr_grid.a"
)

# Empty compiler generated dependencies file for rtr_grid.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librtr_util.a"
)

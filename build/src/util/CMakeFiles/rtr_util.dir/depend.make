# Empty dependencies file for rtr_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rtr_util.dir/args.cpp.o"
  "CMakeFiles/rtr_util.dir/args.cpp.o.d"
  "CMakeFiles/rtr_util.dir/profiler.cpp.o"
  "CMakeFiles/rtr_util.dir/profiler.cpp.o.d"
  "CMakeFiles/rtr_util.dir/stats.cpp.o"
  "CMakeFiles/rtr_util.dir/stats.cpp.o.d"
  "CMakeFiles/rtr_util.dir/table.cpp.o"
  "CMakeFiles/rtr_util.dir/table.cpp.o.d"
  "librtr_util.a"
  "librtr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rtr_arm.
# This may be replaced when dependencies are built.

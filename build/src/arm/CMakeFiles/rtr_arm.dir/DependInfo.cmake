
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arm/cspace.cpp" "src/arm/CMakeFiles/rtr_arm.dir/cspace.cpp.o" "gcc" "src/arm/CMakeFiles/rtr_arm.dir/cspace.cpp.o.d"
  "/root/repo/src/arm/planar_arm.cpp" "src/arm/CMakeFiles/rtr_arm.dir/planar_arm.cpp.o" "gcc" "src/arm/CMakeFiles/rtr_arm.dir/planar_arm.cpp.o.d"
  "/root/repo/src/arm/workspace.cpp" "src/arm/CMakeFiles/rtr_arm.dir/workspace.cpp.o" "gcc" "src/arm/CMakeFiles/rtr_arm.dir/workspace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/rtr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

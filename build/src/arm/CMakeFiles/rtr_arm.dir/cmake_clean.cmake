file(REMOVE_RECURSE
  "CMakeFiles/rtr_arm.dir/cspace.cpp.o"
  "CMakeFiles/rtr_arm.dir/cspace.cpp.o.d"
  "CMakeFiles/rtr_arm.dir/planar_arm.cpp.o"
  "CMakeFiles/rtr_arm.dir/planar_arm.cpp.o.d"
  "CMakeFiles/rtr_arm.dir/workspace.cpp.o"
  "CMakeFiles/rtr_arm.dir/workspace.cpp.o.d"
  "librtr_arm.a"
  "librtr_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

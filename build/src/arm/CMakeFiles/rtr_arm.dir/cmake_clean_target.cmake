file(REMOVE_RECURSE
  "librtr_arm.a"
)

file(REMOVE_RECURSE
  "librtr_search.a"
)

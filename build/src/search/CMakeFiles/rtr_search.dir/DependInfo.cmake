
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/dijkstra_heuristic.cpp" "src/search/CMakeFiles/rtr_search.dir/dijkstra_heuristic.cpp.o" "gcc" "src/search/CMakeFiles/rtr_search.dir/dijkstra_heuristic.cpp.o.d"
  "/root/repo/src/search/graph_search.cpp" "src/search/CMakeFiles/rtr_search.dir/graph_search.cpp.o" "gcc" "src/search/CMakeFiles/rtr_search.dir/graph_search.cpp.o.d"
  "/root/repo/src/search/grid_planner2d.cpp" "src/search/CMakeFiles/rtr_search.dir/grid_planner2d.cpp.o" "gcc" "src/search/CMakeFiles/rtr_search.dir/grid_planner2d.cpp.o.d"
  "/root/repo/src/search/grid_planner3d.cpp" "src/search/CMakeFiles/rtr_search.dir/grid_planner3d.cpp.o" "gcc" "src/search/CMakeFiles/rtr_search.dir/grid_planner3d.cpp.o.d"
  "/root/repo/src/search/naive_astar.cpp" "src/search/CMakeFiles/rtr_search.dir/naive_astar.cpp.o" "gcc" "src/search/CMakeFiles/rtr_search.dir/naive_astar.cpp.o.d"
  "/root/repo/src/search/path_smoothing.cpp" "src/search/CMakeFiles/rtr_search.dir/path_smoothing.cpp.o" "gcc" "src/search/CMakeFiles/rtr_search.dir/path_smoothing.cpp.o.d"
  "/root/repo/src/search/spacetime_planner.cpp" "src/search/CMakeFiles/rtr_search.dir/spacetime_planner.cpp.o" "gcc" "src/search/CMakeFiles/rtr_search.dir/spacetime_planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/rtr_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rtr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for rtr_search.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rtr_search.dir/dijkstra_heuristic.cpp.o"
  "CMakeFiles/rtr_search.dir/dijkstra_heuristic.cpp.o.d"
  "CMakeFiles/rtr_search.dir/graph_search.cpp.o"
  "CMakeFiles/rtr_search.dir/graph_search.cpp.o.d"
  "CMakeFiles/rtr_search.dir/grid_planner2d.cpp.o"
  "CMakeFiles/rtr_search.dir/grid_planner2d.cpp.o.d"
  "CMakeFiles/rtr_search.dir/grid_planner3d.cpp.o"
  "CMakeFiles/rtr_search.dir/grid_planner3d.cpp.o.d"
  "CMakeFiles/rtr_search.dir/naive_astar.cpp.o"
  "CMakeFiles/rtr_search.dir/naive_astar.cpp.o.d"
  "CMakeFiles/rtr_search.dir/path_smoothing.cpp.o"
  "CMakeFiles/rtr_search.dir/path_smoothing.cpp.o.d"
  "CMakeFiles/rtr_search.dir/spacetime_planner.cpp.o"
  "CMakeFiles/rtr_search.dir/spacetime_planner.cpp.o.d"
  "librtr_search.a"
  "librtr_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

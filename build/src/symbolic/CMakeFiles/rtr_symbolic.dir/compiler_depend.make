# Empty compiler generated dependencies file for rtr_symbolic.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symbolic/blocks_world.cpp" "src/symbolic/CMakeFiles/rtr_symbolic.dir/blocks_world.cpp.o" "gcc" "src/symbolic/CMakeFiles/rtr_symbolic.dir/blocks_world.cpp.o.d"
  "/root/repo/src/symbolic/domain.cpp" "src/symbolic/CMakeFiles/rtr_symbolic.dir/domain.cpp.o" "gcc" "src/symbolic/CMakeFiles/rtr_symbolic.dir/domain.cpp.o.d"
  "/root/repo/src/symbolic/firefight.cpp" "src/symbolic/CMakeFiles/rtr_symbolic.dir/firefight.cpp.o" "gcc" "src/symbolic/CMakeFiles/rtr_symbolic.dir/firefight.cpp.o.d"
  "/root/repo/src/symbolic/planner.cpp" "src/symbolic/CMakeFiles/rtr_symbolic.dir/planner.cpp.o" "gcc" "src/symbolic/CMakeFiles/rtr_symbolic.dir/planner.cpp.o.d"
  "/root/repo/src/symbolic/state.cpp" "src/symbolic/CMakeFiles/rtr_symbolic.dir/state.cpp.o" "gcc" "src/symbolic/CMakeFiles/rtr_symbolic.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/search/CMakeFiles/rtr_search.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/rtr_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rtr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

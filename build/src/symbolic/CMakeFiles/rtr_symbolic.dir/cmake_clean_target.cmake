file(REMOVE_RECURSE
  "librtr_symbolic.a"
)

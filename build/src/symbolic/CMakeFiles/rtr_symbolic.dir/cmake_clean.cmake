file(REMOVE_RECURSE
  "CMakeFiles/rtr_symbolic.dir/blocks_world.cpp.o"
  "CMakeFiles/rtr_symbolic.dir/blocks_world.cpp.o.d"
  "CMakeFiles/rtr_symbolic.dir/domain.cpp.o"
  "CMakeFiles/rtr_symbolic.dir/domain.cpp.o.d"
  "CMakeFiles/rtr_symbolic.dir/firefight.cpp.o"
  "CMakeFiles/rtr_symbolic.dir/firefight.cpp.o.d"
  "CMakeFiles/rtr_symbolic.dir/planner.cpp.o"
  "CMakeFiles/rtr_symbolic.dir/planner.cpp.o.d"
  "CMakeFiles/rtr_symbolic.dir/state.cpp.o"
  "CMakeFiles/rtr_symbolic.dir/state.cpp.o.d"
  "librtr_symbolic.a"
  "librtr_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * §V.10 rrtpp — RRT with shortcut post-processing lies between RRT and
 * RRT* in both runtime and path cost.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    rtr::bench::requireKnownOptions(argc, argv);
    using namespace rtr;
    using namespace rtr::bench;

    banner("10.rrtpp — RRT + shortcut post-processing",
           "runtime and path cost lie between RRT and RRT* (Fig. 12)");

    const int n_seeds = 8;
    Table table(
        {"planner", "path rad (mean)", "ROI ms (mean)", "found"});
    struct Variant
    {
        const char *label;
        const char *kernel;
    };
    for (const Variant &variant :
         {Variant{"rrt (baseline)", "rrt"},
          Variant{"rrt + post-process", "rrtpp"},
          Variant{"rrt* (optimal-ish)", "rrtstar"}}) {
        RunningStat cost, roi;
        int found = 0;
        for (int seed = 1; seed <= n_seeds; ++seed) {
            KernelReport report = runKernel(
                variant.kernel,
                {"--map", "C", "--seed", std::to_string(seed), "--instance-seed", std::to_string(seed)});
            if (!report.success)
                continue;
            ++found;
            cost.add(report.metrics.at("path_cost_rad"));
            roi.add(report.roi_seconds * 1e3);
        }
        table.addRow({variant.label, Table::num(cost.mean(), 2),
                      Table::num(roi.mean(), 2),
                      std::to_string(found) + "/" +
                          std::to_string(n_seeds)});
    }
    table.print();

    // Shortcut effectiveness detail.
    KernelReport detail = runKernel("rrtpp", {"--map", "C"});
    std::cout << "\nshortcut detail: cost "
              << Table::num(detail.metrics.at("cost_before_rad"), 2)
              << " -> "
              << Table::num(detail.metrics.at("cost_after_rad"), 2)
              << " rad with "
              << static_cast<long long>(
                     detail.metrics.at("shortcuts_applied"))
              << " shortcuts ("
              << Table::pct(detail.metrics.at("shortcut_fraction"))
              << " of ROI spent post-processing)\n";
    return 0;
}

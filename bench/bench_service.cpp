/**
 * @file
 * Open-loop latency harness for the planning service (rtr::service).
 *
 * Three phases against one shared World:
 *
 *  1. Backlog saturation: pre-queue 1k/10k/100k mixed requests (capped
 *     by --requests), then start the workers and drain — the sustained
 *     requests/sec ceiling and the sojourn-latency distribution under
 *     a standing queue.
 *  2. Poisson open loop: submissions arrive at exponential
 *     inter-arrival times (--rate), latency is measured from each
 *     request's *scheduled* arrival (not its actual submit), so
 *     coordinated omission cannot hide queueing delay.
 *  3. Determinism replay: one mixed request set submitted forward,
 *     reversed, and shuffled, across worker counts {1, 2}; the
 *     canonical response bytes of every run must memcmp-match the
 *     baseline. Divergence exits 2 (check.sh treats that as failure).
 *
 * `--json [path]` writes BENCH_service.json (default path) with the
 * full sweep for EXPERIMENTS.md.
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "service/service.h"
#include "util/rng.h"

namespace {

using namespace rtr;
using namespace rtr::bench;
using namespace rtr::service;

struct Options
{
    double rate = 20000.0;       ///< Poisson arrivals per second.
    std::size_t requests = 20000;
    std::string mix = "pp2d:2,prm:1,nn:10,icp:2";
    std::size_t workers = 0;     ///< 0 = parallelThreads().
    std::size_t queue_capacity = 1 << 17;
    std::uint64_t seed = 1;
    bool write_json = false;
    std::string json_path = "BENCH_service.json";
};

[[noreturn]] void
usageExit(const char *argv0, const std::string &message)
{
    std::cerr << argv0 << ": " << message << "\n";
    std::exit(2);
}

long long
parseInt(const char *argv0, const char *what, const std::string &text,
         long long lo, long long hi)
{
    char *end = nullptr;
    errno = 0;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
        value < lo || value > hi)
        usageExit(argv0, std::string("bad value for ") + what + ": '" +
                             text + "'");
    return value;
}

double
parseReal(const char *argv0, const char *what, const std::string &text,
          double lo, double hi)
{
    char *end = nullptr;
    errno = 0;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
        !(value >= lo) || !(value <= hi))
        usageExit(argv0, std::string("bad value for ") + what + ": '" +
                             text + "'");
    return value;
}

/** Weighted request-type mix, parsed from "pp2d:1,prm:2,nn:4,icp:1". */
struct Mix
{
    std::array<std::size_t, 4> weight{};   // indexed by RequestType
    std::size_t total = 0;
};

Mix
parseMix(const char *argv0, const std::string &text)
{
    Mix mix;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string entry = text.substr(pos, comma - pos);
        const std::size_t colon = entry.find(':');
        if (colon == std::string::npos)
            usageExit(argv0, "bad --mix entry '" + entry +
                                 "' (want type:weight)");
        const std::string name = entry.substr(0, colon);
        bool matched = false;
        for (int t = 0; t < 4; ++t) {
            if (name == requestTypeName(static_cast<RequestType>(t))) {
                mix.weight[t] += static_cast<std::size_t>(
                    parseInt(argv0, "--mix weight",
                             entry.substr(colon + 1), 0, 1 << 20));
                matched = true;
                break;
            }
        }
        if (!matched)
            usageExit(argv0, "unknown request type '" + name +
                                 "' in --mix (pp2d|prm|nn|icp)");
        pos = comma + 1;
    }
    for (std::size_t w : mix.weight)
        mix.total += w;
    if (mix.total == 0)
        usageExit(argv0, "--mix has zero total weight");
    return mix;
}

Options
parseOptions(int argc, char **argv)
{
    requireKnownOptions(argc, argv,
                        {"--rate hz", "--requests n", "--mix spec",
                         "--workers n", "--queue-capacity n", "--seed n",
                         "--json [path]"});
    Options opt;
    auto value = [&](int &i, const char *what) -> std::string {
        if (i + 1 >= argc)
            usageExit(argv[0], std::string(what) + " needs a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--rate") {
            opt.rate = parseReal(argv[0], "--rate", value(i, "--rate"),
                                 1.0, 1e9);
        } else if (arg == "--requests") {
            opt.requests = static_cast<std::size_t>(
                parseInt(argv[0], "--requests",
                         value(i, "--requests"), 1, 100000000));
        } else if (arg == "--mix") {
            opt.mix = value(i, "--mix");
        } else if (arg == "--workers") {
            opt.workers = static_cast<std::size_t>(parseInt(
                argv[0], "--workers", value(i, "--workers"), 0, 4096));
        } else if (arg == "--queue-capacity") {
            opt.queue_capacity = static_cast<std::size_t>(
                parseInt(argv[0], "--queue-capacity",
                         value(i, "--queue-capacity"), 2, 1 << 26));
        } else if (arg == "--seed") {
            opt.seed = static_cast<std::uint64_t>(parseInt(
                argv[0], "--seed", value(i, "--seed"), 0,
                std::numeric_limits<long long>::max()));
        } else if (arg == "--json") {
            opt.write_json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                opt.json_path = argv[++i];
        } else {
            usageExit(argv[0], "unexpected operand '" + arg + "'");
        }
    }
    return opt;
}

/** A deterministic mixed request stream (type choice + payload). */
std::vector<Request>
makeStream(const World &world, const Mix &mix, std::size_t n,
           std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Request> stream;
    stream.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t pick = rng.index(mix.total);
        int type = 0;
        while (pick >= mix.weight[static_cast<std::size_t>(type)]) {
            pick -= mix.weight[static_cast<std::size_t>(type)];
            ++type;
        }
        stream.push_back(
            world.randomRequest(static_cast<RequestType>(type), rng));
    }
    return stream;
}

/** Latency distribution summary (microseconds). */
struct LatencySummary
{
    double p50 = 0.0, p95 = 0.0, p99 = 0.0, p999 = 0.0, mean = 0.0;
};

LatencySummary
summarize(std::vector<double> &latencies_us)
{
    LatencySummary s;
    if (latencies_us.empty())
        return s;
    std::sort(latencies_us.begin(), latencies_us.end());
    auto pct = [&](double q) {
        const std::size_t n = latencies_us.size();
        std::size_t idx = static_cast<std::size_t>(q * (n - 1) + 0.5);
        return latencies_us[std::min(idx, n - 1)];
    };
    s.p50 = pct(0.50);
    s.p95 = pct(0.95);
    s.p99 = pct(0.99);
    s.p999 = pct(0.999);
    double sum = 0.0;
    for (double v : latencies_us)
        sum += v;
    s.mean = sum / static_cast<double>(latencies_us.size());
    return s;
}

void
latencyFields(JsonWriter &json, const LatencySummary &s)
{
    json.field("mean_us", s.mean);
    json.field("p50_us", s.p50);
    json.field("p95_us", s.p95);
    json.field("p99_us", s.p99);
    json.field("p999_us", s.p999);
}

/** One backlog (pre-queued) drain run. */
struct BacklogResult
{
    std::size_t queued = 0;
    double seconds = 0.0;
    double requests_per_sec = 0.0;
    LatencySummary latency;   ///< submit -> done sojourn.
};

BacklogResult
runBacklog(const World &world, const Options &opt,
           const std::vector<Request> &stream)
{
    ServiceConfig config;
    config.workers = opt.workers;
    config.queue_capacity =
        std::max(opt.queue_capacity, stream.size() * 2);
    PlanningService svc(world, config);

    std::vector<Ticket> tickets;
    tickets.reserve(stream.size());
    for (const Request &request : stream)
        tickets.push_back(svc.submit(request));

    const std::int64_t t0 = telemetry::nowNs();
    svc.start();
    svc.shutdown(PlanningService::Shutdown::Drain);
    const std::int64_t t1 = telemetry::nowNs();

    BacklogResult result;
    result.queued = stream.size();
    result.seconds = static_cast<double>(t1 - t0) * 1e-9;
    result.requests_per_sec =
        static_cast<double>(stream.size()) / result.seconds;
    std::vector<double> sojourn_us;
    sojourn_us.reserve(tickets.size());
    for (Ticket ticket : tickets) {
        const Completion done = svc.collect(ticket);
        sojourn_us.push_back(static_cast<double>(done.timing.done_ns -
                                                 done.timing.submit_ns) *
                             1e-3);
    }
    result.latency = summarize(sojourn_us);
    return result;
}

/** The Poisson open-loop run. */
struct PoissonResult
{
    double offered_rate = 0.0;   ///< Requested arrivals/sec.
    double achieved_rate = 0.0;  ///< Completions/sec over the run.
    std::size_t requests = 0;
    LatencySummary latency;      ///< scheduled arrival -> done.
    LatencySummary exec;         ///< start -> done (service time).
};

PoissonResult
runPoisson(const World &world, const Options &opt,
           const std::vector<Request> &stream)
{
    ServiceConfig config;
    config.workers = opt.workers;
    config.queue_capacity = opt.queue_capacity;
    PlanningService svc(world, config);
    svc.start();

    // Exponential inter-arrival schedule, fixed before the clock
    // starts so generation cost is not in the measured window.
    Rng arrivals(splitSeed(opt.seed, 101));
    std::vector<double> offset_ns(stream.size());
    double t = 0.0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        t += -std::log(1.0 - arrivals.uniform()) * 1e9 / opt.rate;
        offset_ns[i] = t;
    }

    std::vector<Ticket> tickets(stream.size());
    std::vector<std::int64_t> scheduled_ns(stream.size());
    const std::int64_t t0 = telemetry::nowNs();
    for (std::size_t i = 0; i < stream.size(); ++i) {
        scheduled_ns[i] =
            t0 + static_cast<std::int64_t>(offset_ns[i]);
        // Sleep down to ~100us before the arrival, then yield-spin:
        // precise enough for microsecond-scale schedules without
        // burning the whole wait on a busy loop.
        std::int64_t now = telemetry::nowNs();
        if (scheduled_ns[i] - now > 200000)
            std::this_thread::sleep_for(std::chrono::nanoseconds(
                scheduled_ns[i] - now - 100000));
        while (telemetry::nowNs() < scheduled_ns[i])
            std::this_thread::yield();
        tickets[i] = svc.submit(stream[i]);
    }
    svc.shutdown(PlanningService::Shutdown::Drain);
    const std::int64_t t1 = telemetry::nowNs();

    PoissonResult result;
    result.offered_rate = opt.rate;
    result.requests = stream.size();
    result.achieved_rate = static_cast<double>(stream.size()) /
                           (static_cast<double>(t1 - t0) * 1e-9);
    std::vector<double> sojourn_us(stream.size());
    std::vector<double> exec_us(stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const Completion done = svc.collect(tickets[i]);
        sojourn_us[i] = static_cast<double>(done.timing.done_ns -
                                            scheduled_ns[i]) *
                        1e-3;
        exec_us[i] = static_cast<double>(done.timing.done_ns -
                                         done.timing.start_ns) *
                     1e-3;
    }
    result.latency = summarize(sojourn_us);
    result.exec = summarize(exec_us);
    return result;
}

/** Mean service time per request type (solo backlog runs). */
struct TypeCost
{
    RequestType type;
    double mean_us = 0.0;
    double requests_per_sec = 0.0;
};

std::vector<TypeCost>
runPerType(const World &world, const Options &opt)
{
    std::vector<TypeCost> costs;
    const std::size_t n = std::min<std::size_t>(opt.requests, 2000);
    for (int t = 0; t < 4; ++t) {
        Mix solo;
        solo.weight[static_cast<std::size_t>(t)] = 1;
        solo.total = 1;
        const std::vector<Request> stream =
            makeStream(world, solo, n, splitSeed(opt.seed, 7 + t));
        const BacklogResult run = runBacklog(world, opt, stream);
        TypeCost cost;
        cost.type = static_cast<RequestType>(t);
        cost.mean_us = 1e6 / run.requests_per_sec;
        cost.requests_per_sec = run.requests_per_sec;
        costs.push_back(cost);
    }
    return costs;
}

/**
 * Determinism replay: canonical response bytes per request index must
 * be identical across submission orders and worker counts.
 */
struct ReplayResult
{
    bool identical = true;
    std::string divergence;   ///< Human-readable first mismatch.
    std::size_t runs = 0;
    std::size_t requests = 0;
};

ReplayResult
runReplay(const World &world, const Options &opt, const Mix &mix)
{
    const std::size_t n = std::min<std::size_t>(opt.requests, 240);
    const std::vector<Request> stream =
        makeStream(world, mix, n, splitSeed(opt.seed, 55));

    // Submission orders: forward, reversed, shuffled.
    std::vector<std::vector<std::size_t>> orders;
    std::vector<std::size_t> forward(n);
    for (std::size_t i = 0; i < n; ++i)
        forward[i] = i;
    orders.push_back(forward);
    std::vector<std::size_t> reversed(forward.rbegin(), forward.rend());
    orders.push_back(reversed);
    std::vector<std::size_t> shuffled = forward;
    Rng shuffle_rng(splitSeed(opt.seed, 56));
    std::shuffle(shuffled.begin(), shuffled.end(), shuffle_rng.engine());
    orders.push_back(shuffled);
    const char *order_names[] = {"forward", "reversed", "shuffled"};

    ReplayResult result;
    result.requests = n;
    std::vector<std::vector<std::uint8_t>> baseline;
    for (std::size_t workers : {std::size_t(1), std::size_t(2)}) {
        for (std::size_t o = 0; o < orders.size(); ++o) {
            ServiceConfig config;
            config.workers = workers;
            config.queue_capacity = std::max<std::size_t>(2 * n, 64);
            PlanningService svc(world, config);
            svc.start();
            std::vector<Ticket> tickets(n);
            for (std::size_t idx : orders[o])
                tickets[idx] = svc.submit(stream[idx]);
            svc.shutdown(PlanningService::Shutdown::Drain);

            std::vector<std::vector<std::uint8_t>> bytes(n);
            for (std::size_t i = 0; i < n; ++i) {
                const Completion done = svc.collect(tickets[i]);
                appendCanonicalBytes(done.response, bytes[i]);
            }
            ++result.runs;
            if (baseline.empty()) {
                baseline = std::move(bytes);
                continue;
            }
            for (std::size_t i = 0; i < n; ++i) {
                if (bytes[i] != baseline[i]) {
                    result.identical = false;
                    if (result.divergence.empty())
                        result.divergence =
                            std::string("request ") + std::to_string(i) +
                            " (" +
                            requestTypeName(requestTypeOf(stream[i])) +
                            ") diverged in order=" + order_names[o] +
                            " workers=" + std::to_string(workers);
                }
            }
        }
    }
    return result;
}

void
writeJson(const Options &opt, const std::vector<TypeCost> &per_type,
          const std::vector<BacklogResult> &backlog,
          const PoissonResult &poisson, const ReplayResult &replay,
          std::size_t worker_count)
{
    std::ofstream file(opt.json_path);
    if (!file) {
        std::cerr << "cannot write " << opt.json_path << "\n";
        return;
    }
    JsonWriter json(file);
    json.beginObject();
    json.field("benchmark", "service");
    json.field("mix", opt.mix);
    json.field("seed", static_cast<long long>(opt.seed));
    json.field("workers", static_cast<long long>(worker_count));
    json.field("queue_capacity",
               static_cast<long long>(opt.queue_capacity));
    json.beginArray("per_type");
    for (const TypeCost &cost : per_type) {
        json.beginObject();
        json.field("type", requestTypeName(cost.type));
        json.field("mean_us", cost.mean_us);
        json.field("requests_per_sec", cost.requests_per_sec);
        json.endObject();
    }
    json.endArray();
    json.beginArray("backlog");
    for (const BacklogResult &run : backlog) {
        json.beginObject();
        json.field("queued", static_cast<long long>(run.queued));
        json.field("seconds", run.seconds);
        json.field("requests_per_sec", run.requests_per_sec);
        latencyFields(json, run.latency);
        json.endObject();
    }
    json.endArray();
    json.beginObject("poisson");
    json.field("offered_rate", poisson.offered_rate);
    json.field("achieved_rate", poisson.achieved_rate);
    json.field("requests", static_cast<long long>(poisson.requests));
    latencyFields(json, poisson.latency);
    json.field("exec_mean_us", poisson.exec.mean);
    json.field("exec_p99_us", poisson.exec.p99);
    json.endObject();
    json.beginObject("replay");
    json.field("runs", static_cast<long long>(replay.runs));
    json.field("requests", static_cast<long long>(replay.requests));
    json.field("identical", replay.identical);
    if (!replay.identical)
        json.field("divergence", replay.divergence);
    json.endObject();
    json.endObject();
    std::cout << "\nwrote " << opt.json_path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv);
    const Options opt = parseOptions(argc, argv);
    const Mix mix = parseMix(argv[0], opt.mix);

    banner("service — planning-as-a-service throughput and latency",
           "the paper benchmarks each kernel one query at a time; this "
           "harness serves the same kernels as a long-lived engine "
           "under open-loop Poisson traffic");

    World world;
    std::cout << "world: " << world.config().grid_size << "x"
              << world.config().grid_size << " grid, "
              << world.config().prm_samples << "-node PRM, "
              << world.config().nn_points << "-pt NN cloud, "
              << world.icpModel().size() << "-pt ICP model\n"
              << "mix: " << opt.mix << "   requests: " << opt.requests
              << "   rate: " << opt.rate << "/s\n\n";

    // Per-type service time (also warms the allocator and pool).
    const std::vector<TypeCost> per_type = runPerType(world, opt);
    Table type_table({"type", "µs/req", "req/s"});
    for (const TypeCost &cost : per_type)
        type_table.addRow({requestTypeName(cost.type),
                           Table::num(cost.mean_us, 1),
                           Table::num(cost.requests_per_sec, 0)});
    type_table.print();

    // Backlog saturation sweep.
    std::vector<std::size_t> sizes;
    for (std::size_t size : {std::size_t(1000), std::size_t(10000),
                             std::size_t(100000)})
        if (size <= opt.requests)
            sizes.push_back(size);
    if (sizes.empty())
        sizes.push_back(opt.requests);
    std::vector<BacklogResult> backlog;
    std::cout << "\nbacklog saturation (pre-queued, drained):\n";
    Table backlog_table({"queued", "req/s", "p50 µs", "p95 µs",
                         "p99 µs", "p99.9 µs"});
    for (std::size_t size : sizes) {
        const std::vector<Request> stream =
            makeStream(world, mix, size, splitSeed(opt.seed, 21));
        backlog.push_back(runBacklog(world, opt, stream));
        const BacklogResult &run = backlog.back();
        backlog_table.addRow(
            {Table::count(static_cast<long long>(run.queued)),
             Table::num(run.requests_per_sec, 0),
             Table::num(run.latency.p50, 1),
             Table::num(run.latency.p95, 1),
             Table::num(run.latency.p99, 1),
             Table::num(run.latency.p999, 1)});
    }
    backlog_table.print();

    // Poisson open loop.
    const std::vector<Request> poisson_stream =
        makeStream(world, mix, opt.requests, splitSeed(opt.seed, 22));
    const PoissonResult poisson =
        runPoisson(world, opt, poisson_stream);
    std::cout << "\npoisson open loop (latency from scheduled "
                 "arrival):\n";
    Table poisson_table({"offered/s", "achieved/s", "p50 µs", "p95 µs",
                         "p99 µs", "p99.9 µs", "exec µs"});
    poisson_table.addRow({Table::num(poisson.offered_rate, 0),
                          Table::num(poisson.achieved_rate, 0),
                          Table::num(poisson.latency.p50, 1),
                          Table::num(poisson.latency.p95, 1),
                          Table::num(poisson.latency.p99, 1),
                          Table::num(poisson.latency.p999, 1),
                          Table::num(poisson.exec.mean, 1)});
    poisson_table.print();

    // Determinism replay.
    const ReplayResult replay = runReplay(world, opt, mix);
    std::cout << "\nreplay: " << replay.runs << " runs x "
              << replay.requests << " requests -> "
              << (replay.identical ? "bitwise identical"
                                   : "DIVERGED: " + replay.divergence)
              << "\n";

    ServiceConfig probe;
    probe.workers = opt.workers;
    const std::size_t worker_count =
        PlanningService(world, probe).workerCount();
    if (opt.write_json)
        writeJson(opt, per_type, backlog, poisson, replay,
                  worker_count);

    return replay.identical ? 0 : 2;
}

/**
 * @file
 * §V.04 pp2d — collision-detection share (paper: > 65% of execution
 * time) for the car footprint on city maps.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    rtr::bench::requireKnownOptions(argc, argv);
    using namespace rtr;
    using namespace rtr::bench;

    banner("04.pp2d — 2-D car path planning",
           "collision detection takes > 65% of execution time (Fig. 5)");

    Table table({"map (cells)", "collision share", "expanded",
                 "collision checks", "path (m)", "ROI (ms)"});
    for (int size : {256, 512, 1024}) {
        KernelReport report =
            runKernel("pp2d", {"--map-size", std::to_string(size)});
        table.addRow(
            {std::to_string(size) + "x" + std::to_string(size),
             Table::pct(report.metrics.at("collision_fraction")),
             Table::count(static_cast<long long>(
                 report.metrics.at("expanded"))),
             Table::count(static_cast<long long>(
                 report.metrics.at("collision_checks"))),
             Table::num(report.metrics.at("path_cost_m"), 0),
             Table::num(report.roi_seconds * 1e3, 0)});
    }
    table.print();
    std::cout << "\n(paper: > 65% of time in collision detection on "
                 "Boston_1_1024 with a 4.8 x 1.8 m car)\n";
    return 0;
}

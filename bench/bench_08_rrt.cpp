/**
 * @file
 * §V.08 rrt — collision detection (paper: up to 62%) and nearest-
 * neighbor search (paper: up to 31%) dominate, averaged over seeds on
 * Map-C and Map-F.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    rtr::bench::requireKnownOptions(argc, argv);
    using namespace rtr;
    using namespace rtr::bench;

    banner("08.rrt — RRT arm motion planning",
           "collision detection up to 62% and NN search up to 31% of "
           "execution time (Fig. 10)");

    Table table({"map", "collision share (mean)", "nn share (mean)",
                 "samples (mean)", "path rad (mean)", "ROI ms (mean)"});
    const int n_seeds = 8;
    for (const char *map : {"C", "F"}) {
        RunningStat collision, nn, samples, cost, roi;
        for (int seed = 1; seed <= n_seeds; ++seed) {
            KernelReport report = runKernel(
                "rrt", {"--map", map, "--seed", std::to_string(seed), "--instance-seed", std::to_string(seed)});
            collision.add(report.metrics.at("collision_fraction"));
            nn.add(report.metrics.at("nn_fraction"));
            samples.add(report.metrics.at("samples"));
            cost.add(report.metrics.at("path_cost_rad"));
            roi.add(report.roi_seconds * 1e3);
        }
        table.addRow({std::string("Map-") + map,
                      Table::pct(collision.mean()),
                      Table::pct(nn.mean()),
                      Table::num(samples.mean(), 0),
                      Table::num(cost.mean(), 2),
                      Table::num(roi.mean(), 2)});
    }
    table.print();
    std::cout << "\n(" << n_seeds
              << " seeds per map; paper: collision <= 62%, NN <= 31%)\n";
    return 0;
}

/**
 * @file
 * §V.01 pfl — ray-casting share across five building regions (paper:
 * 67-78% of execution time), plus the Fig. 2 convergence series and
 * the hierarchical ray-cast engine's speedup over the scalar DDA.
 *
 * The paper-claim table runs the scalar engine (probe every traversed
 * cell — the cost profile the paper measured); the engine comparison
 * then shows what the bitboard/pyramid engine does to the same
 * workload. Warmup runs (bench_common.h) keep first-touch faults out
 * of the reported times.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    rtr::bench::requireKnownOptions(argc, argv);
    using namespace rtr;
    using namespace rtr::bench;

    banner("01.pfl — particle filter localization",
           "ray-casting is 67%-78% of execution time across 5 regions; "
           "particles converge (Fig. 2)");

    Table table({"region", "raycast share", "weight share",
                 "final err (m)", "spread: start -> end (m)",
                 "ROI (ms)"});
    RunningStat raycast;
    for (int region = 0; region < 5; ++region) {
        KernelReport report = runKernelWarm(
            "pfl",
            {"--region", std::to_string(region), "--raycast", "scalar"});
        raycast.add(report.metrics.at("raycast_fraction"));
        const auto &spread = report.series.at("spread");
        table.addRow({std::to_string(region),
                      Table::pct(report.metrics.at("raycast_fraction")),
                      Table::pct(report.phaseFraction("weight")),
                      Table::num(report.metrics.at("final_error_m"), 2),
                      Table::num(spread.front(), 2) + " -> " +
                          Table::num(spread.back(), 2),
                      Table::num(report.roi_seconds * 1e3, 0)});
    }
    table.print();
    std::cout << "\nmeasured ray-casting share: "
              << Table::pct(raycast.min()) << " - "
              << Table::pct(raycast.max()) << "   (paper: 67% - 78%)\n";

    // Engine comparison on the default region: identical weights and
    // metrics, different occupancy-query cost.
    std::cout << "\nray-cast engine comparison (region 2, identical "
                 "results):\n";
    Table engines({"engine", "ROI (ms)", "raycast share",
                   "probes/ray", "final err (m)"});
    double scalar_roi = 0.0, hier_roi = 0.0, packet_roi = 0.0;
    for (const std::string engine : {"scalar", "hier", "packet"}) {
        KernelReport report =
            runKernelWarm("pfl", {"--raycast", engine});
        (engine == "scalar"
             ? scalar_roi
             : (engine == "hier" ? hier_roi : packet_roi)) =
            report.roi_seconds;
        engines.addRow(
            {engine, Table::num(report.roi_seconds * 1e3, 0),
             Table::pct(report.metrics.at("raycast_fraction")),
             Table::num(report.metrics.at("probes_per_ray_" + engine), 1),
             Table::num(report.metrics.at("final_error_m"), 2)});
    }
    engines.print();
    if (hier_roi > 0.0) {
        std::cout << "pfl ROI speedup (scalar -> hier): "
                  << Table::num(scalar_roi / hier_roi, 2) << "x\n";
    }
    if (packet_roi > 0.0) {
        std::cout << "pfl ROI speedup (scalar -> packet): "
                  << Table::num(scalar_roi / packet_roi, 2) << "x\n";
    }

    // Fig. 2 series detail for the default region.
    KernelReport fig2 = runKernelWarm("pfl");
    std::cout << "\nFig. 2 particle spread over time (m): "
              << seriesSummary(fig2.series.at("spread")) << "\n";
    return 0;
}

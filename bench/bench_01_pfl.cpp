/**
 * @file
 * §V.01 pfl — ray-casting share across five building regions (paper:
 * 67-78% of execution time), plus the Fig. 2 convergence series.
 */

#include "bench_common.h"

int
main()
{
    using namespace rtr;
    using namespace rtr::bench;

    banner("01.pfl — particle filter localization",
           "ray-casting is 67%-78% of execution time across 5 regions; "
           "particles converge (Fig. 2)");

    Table table({"region", "raycast share", "weight share",
                 "final err (m)", "spread: start -> end (m)",
                 "ROI (ms)"});
    RunningStat raycast;
    for (int region = 0; region < 5; ++region) {
        KernelReport report = runKernel(
            "pfl", {"--region", std::to_string(region)});
        raycast.add(report.metrics.at("raycast_fraction"));
        const auto &spread = report.series.at("spread");
        table.addRow({std::to_string(region),
                      Table::pct(report.metrics.at("raycast_fraction")),
                      Table::pct(report.phaseFraction("weight")),
                      Table::num(report.metrics.at("final_error_m"), 2),
                      Table::num(spread.front(), 2) + " -> " +
                          Table::num(spread.back(), 2),
                      Table::num(report.roi_seconds * 1e3, 0)});
    }
    table.print();
    std::cout << "\nmeasured ray-casting share: "
              << Table::pct(raycast.min()) << " - "
              << Table::pct(raycast.max()) << "   (paper: 67% - 78%)\n";

    // Fig. 2 series detail for the default region.
    KernelReport fig2 = runKernel("pfl");
    std::cout << "Fig. 2 particle spread over time (m): "
              << seriesSummary(fig2.series.at("spread")) << "\n";
    return 0;
}

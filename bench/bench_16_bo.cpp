/**
 * @file
 * §V.16 bo — reward over 45 learning iterations (Fig. 19); BO runs
 * ~15000x more (acquisition) iterations than cem and its sort is ~6x
 * costlier per call due to the extra per-record metadata.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    rtr::bench::requireKnownOptions(argc, argv);
    using namespace rtr;
    using namespace rtr::bench;

    banner("16.bo — Bayesian optimization for the ball-throwing robot",
           "~15000x more iterations than cem; sort ~6x costlier "
           "(Fig. 19)");

    KernelReport bo = runKernel("bo");
    KernelReport cem = runKernel("cem", {"--repeats", "2000"});

    // Fig. 19: reward over the learning iterations.
    std::cout << "Fig. 19 reward over iterations: "
              << seriesSummary(bo.series.at("reward"), 9) << "\n";
    std::cout << "best reward: "
              << Table::num(bo.metrics.at("best_reward"), 3) << " m\n\n";

    Table shares({"phase", "share of ROI"});
    for (const char *phase :
         {"gp-fit", "acquisition", "sort", "evaluate"})
        shares.addRow({phase, Table::pct(bo.phaseFraction(phase))});
    shares.print();

    // Iteration-count comparison (paper: ~15000x).
    double bo_iters = bo.metrics.at("acquisition_evals");
    double cem_iters = cem.metrics.at("evaluations_per_episode");
    std::cout << "\nacquisition evaluations per learning run: "
              << Table::count(static_cast<long long>(bo_iters))
              << " vs cem's " << static_cast<long long>(cem_iters)
              << " reward evaluations  ->  "
              << Table::count(
                     static_cast<long long>(bo_iters / cem_iters))
              << "x   (paper: ~15000x)\n";

    // Sort-cost comparison (paper: ~6x): mean cost per sort call.
    double bo_sort_per_call =
        bo.metrics.at("sort_ns_total") /
        static_cast<double>(bo.profiler.phaseCount("sort"));
    double cem_sort_per_call =
        static_cast<double>(cem.profiler.phaseNs("sort")) /
        static_cast<double>(cem.profiler.phaseCount("sort"));
    std::cout << "sort cost per call: bo "
              << Table::num(bo_sort_per_call, 0) << " ns vs cem "
              << Table::num(cem_sort_per_call, 0) << " ns  ->  "
              << Table::num(bo_sort_per_call / cem_sort_per_call, 1)
              << "x   (paper: ~6x; BO records carry more metadata)\n";
    return 0;
}

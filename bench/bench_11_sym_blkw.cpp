/**
 * @file
 * §V.11 sym-blkw — graph search + string manipulation dominate the
 * symbolic blocks-world planner.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    rtr::bench::requireKnownOptions(argc, argv);
    using namespace rtr;
    using namespace rtr::bench;

    banner("11.sym-blkw — symbolic planning: blocks world",
           "the dominant operations are graph search and string "
           "manipulation inside nodes (Fig. 13)");

    Table table({"blocks", "ground actions", "expanded", "plan len",
                 "string-ops share", "branching", "ROI (ms)"});
    for (int blocks : {4, 5, 6, 7, 8}) {
        KernelReport report = runKernel(
            "sym-blkw", {"--blocks", std::to_string(blocks)});
        table.addRow(
            {std::to_string(blocks),
             Table::count(static_cast<long long>(
                 report.metrics.at("ground_actions"))),
             Table::count(static_cast<long long>(
                 report.metrics.at("expanded"))),
             Table::num(report.metrics.at("plan_length"), 0),
             Table::pct(report.metrics.at("string_ops_fraction")),
             Table::num(report.metrics.at("branching_factor"), 1),
             Table::num(report.roi_seconds * 1e3, 1)});
    }
    table.print();
    std::cout << "\n(string-ops share = applicability tests, effect "
                 "application, and relaxed-plan heuristics, all string/"
                 "set manipulation over node atoms)\n";
    return 0;
}

/**
 * @file
 * §V.13 dmp — the rollout is a fine-grained serial dependency chain
 * (the paper's IPC < 1 observation); this bench reports ns/step as the
 * serialization proxy, plus the Fig. 15 trajectory agreement.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    rtr::bench::requireKnownOptions(argc, argv);
    using namespace rtr;
    using namespace rtr::bench;

    banner("13.dmp — dynamic movement primitives",
           "serialized incremental integration limits ILP (IPC < 1); "
           "rollout tracks the demonstration (Fig. 15)");

    Table table({"basis", "ns/step", "rollout share", "track err (m)"});
    for (int basis : {10, 25, 50}) {
        KernelReport report =
            runKernel("dmp", {"--basis", std::to_string(basis)});
        table.addRow(
            {std::to_string(basis),
             Table::num(report.metrics.at("ns_per_step"), 0),
             Table::pct(report.metrics.at("rollout_fraction")),
             Table::num(report.metrics.at("tracking_error_m"), 3)});
    }
    table.print();

    KernelReport fig15 = runKernel("dmp");
    std::cout << "\nFig. 15 trajectory y(t): "
              << seriesSummary(fig15.series.at("traj_y")) << "\n";
    std::cout << "Fig. 15 velocity  vy(t): "
              << seriesSummary(fig15.series.at("vel_y")) << "\n";
    std::cout << "(each integration step consumes the previous step's "
                 "position, velocity, and phase; ns/step barely moves "
                 "with basis count because the chain, not the math, "
                 "is the limit)\n";
    return 0;
}

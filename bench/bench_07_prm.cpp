/**
 * @file
 * §V.07 prm — the offline roadmap build is long but off the critical
 * path; the online query (graph search + L2-norm evaluations) is what
 * matters.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    rtr::bench::requireKnownOptions(argc, argv);
    using namespace rtr;
    using namespace rtr::bench;

    banner("07.prm — PRM arm motion planning",
           "offline build is lengthy but paid once; the online search "
           "with frequent L2-norm calculations is the critical path "
           "(Figs. 8, 9)");

    Table table({"map", "samples", "offline (ms)", "online ROI (ms)",
                 "search share", "L2 evals", "path (rad)", "ok"});
    for (const char *map : {"C", "F"}) {
        for (int samples : {2000, 4000}) {
            KernelReport report = runKernel(
                "prm",
                {"--map", map, "--samples", std::to_string(samples)});
            table.addRow(
                {std::string("Map-") + map, std::to_string(samples),
                 Table::num(report.metrics.at("offline_seconds") * 1e3,
                            0),
                 Table::num(report.roi_seconds * 1e3, 2),
                 Table::pct(report.metrics.at("graph_search_fraction") +
                            report.metrics.at("online_connect_fraction")),
                 Table::count(static_cast<long long>(
                     report.metrics.at("l2_norm_evals"))),
                 Table::num(report.metrics.at("path_cost_rad"), 2),
                 report.success ? "yes" : "NO"});
        }
    }
    table.print();
    std::cout << "\n(offline/online ratio shows why the paper only "
                 "counts the online query against the real-time "
                 "budget)\n";
    return 0;
}

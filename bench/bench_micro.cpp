/**
 * @file
 * google-benchmark microkernels: the primitive operations the paper's
 * per-kernel analyses identify as acceleration targets (ray-casting,
 * footprint collision checks, L2 norms, matrix multiply/invert, k-d
 * tree queries, record sorts, symbolic state application).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "arm/cspace.h"
#include "bench_common.h"
#include "util/stopwatch.h"
#include "control/cem.h"
#include "grid/footprint.h"
#include "grid/map_gen.h"
#include "grid/raycast.h"
#include "linalg/decomp.h"
#include "grid/distance_transform.h"
#include "linalg/matrix.h"
#include "pointcloud/dyn_kdtree.h"
#include "symbolic/blocks_world.h"
#include "symbolic/planner.h"
#include "util/rng.h"
#include "util/simd.h"

namespace {

using namespace rtr;

void
BM_Raycast(benchmark::State &state)
{
    OccupancyGrid2D map = makeIndoorMap(240, 160, 0.25, 1);
    Rng rng(2);
    Vec2 origin{30.0, 20.0};
    while (map.occupiedWorld(origin))
        origin.x += 0.25;
    double angle = 0.0;
    for (auto _ : state) {
        angle += 0.1;
        benchmark::DoNotOptimize(castRay(map, origin, angle, 10.0));
    }
}
BENCHMARK(BM_Raycast);

/**
 * The pfl-style scan workload on a fine (0.05 m) indoor map — the
 * configuration the bitboard/pyramid engine targets. The map is the
 * standard 240x160 @ 0.25 m building upsampled 5x, so the geometry is
 * identical to the kernel's and only the cell count (1200x800) grows.
 */
OccupancyGrid2D
fineIndoorMap()
{
    return scaleMap(makeIndoorMap(240, 160, 0.25, 1), 5);
}

Vec2
freeScanOrigin(const OccupancyGrid2D &map)
{
    Vec2 origin{30.0, 20.0};
    while (map.occupiedWorld(origin))
        origin.x += map.resolution();
    return origin;
}

void
castScanFine(benchmark::State &state, RayEngine engine)
{
    OccupancyGrid2D map = fineIndoorMap();
    Vec2 origin = freeScanOrigin(map);
    std::vector<double> out;
    for (auto _ : state) {
        castScan(map, origin, -2.0, 4.0, 60, 20.0, out, engine);
        benchmark::DoNotOptimize(out.data());
    }
}

void
BM_CastScanScalar(benchmark::State &state)
{
    castScanFine(state, RayEngine::Scalar);
}
BENCHMARK(BM_CastScanScalar);

void
BM_CastScanHier(benchmark::State &state)
{
    castScanFine(state, RayEngine::Hierarchical);
}
BENCHMARK(BM_CastScanHier);

void
BM_CastScanPacket(benchmark::State &state)
{
    castScanFine(state, RayEngine::Packet);
}
BENCHMARK(BM_CastScanPacket);

void
BM_FootprintCollision(benchmark::State &state)
{
    OccupancyGrid2D map = makeCityMap(512, 0.5, 1);
    RectFootprint car(4.8, 1.8);
    Rng rng(3);
    std::vector<Pose2> poses;
    for (int i = 0; i < 256; ++i)
        poses.push_back(Pose2{rng.uniform(10, 240), rng.uniform(10, 240),
                              rng.uniform(-kPi, kPi)});
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            car.collides(map, poses[i++ % poses.size()]));
    }
}
BENCHMARK(BM_FootprintCollision);

void
BM_L2Norm5D(benchmark::State &state)
{
    Rng rng(4);
    ConfigSpace space(5, -kPi, kPi);
    ArmConfig a = space.sample(rng);
    ArmConfig b = space.sample(rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ConfigSpace::distance(a, b));
        a[0] += 1e-9;  // defeat caching
    }
}
BENCHMARK(BM_L2Norm5D);

void
BM_MatrixMultiply(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(5);
    Matrix a(n, n), b(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            a(r, c) = rng.uniform(-1, 1);
            b(r, c) = rng.uniform(-1, 1);
        }
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(a * b);
}
BENCHMARK(BM_MatrixMultiply)->Arg(8)->Arg(15)->Arg(31);

/**
 * The seed's matmul inner loop with its `lhs == 0.0` skip, kept here
 * (and only here) after its removal from Matrix::operator* so
 * EXPERIMENTS.md can keep quoting a measured before/after for the
 * branch. On the dense random operands every kernel actually feeds the
 * multiply, the branch never fires and only costs the compare.
 */
void
BM_MatrixMultiplyZeroSkip(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(5);
    Matrix a(n, n), b(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            a(r, c) = rng.uniform(-1, 1);
            b(r, c) = rng.uniform(-1, 1);
        }
    }
    for (auto _ : state) {
        Matrix out(n, n);
        const double *ap = a.data();
        const double *bp = b.data();
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t k = 0; k < n; ++k) {
                double lhs = ap[i * n + k];
                if (lhs == 0.0)
                    continue;
                const double *rhs_row = bp + k * n;
                double *out_row = out.data() + i * n;
                for (std::size_t j = 0; j < n; ++j)
                    out_row[j] += lhs * rhs_row[j];
            }
        }
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_MatrixMultiplyZeroSkip)->Arg(8)->Arg(15)->Arg(31);

void
matrixMultiplyFlagged(benchmark::State &state, bool simd)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(5);
    Matrix a(n, n), b(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            a(r, c) = rng.uniform(-1, 1);
            b(r, c) = rng.uniform(-1, 1);
        }
    }
    ScopedSimdKernels flag(simd);
    for (auto _ : state)
        benchmark::DoNotOptimize(a * b);
}

void
BM_GemmScalar(benchmark::State &state)
{
    matrixMultiplyFlagged(state, false);
}
BENCHMARK(BM_GemmScalar)->Arg(8)->Arg(15)->Arg(35)->Arg(96);

void
BM_GemmSimd(benchmark::State &state)
{
    matrixMultiplyFlagged(state, true);
}
BENCHMARK(BM_GemmSimd)->Arg(8)->Arg(15)->Arg(35)->Arg(96);

void
choleskyFlagged(benchmark::State &state, bool simd)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(6);
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            a(r, c) = rng.uniform(-1, 1);
    Matrix spd = multiplyTransposed(a, a);
    for (std::size_t i = 0; i < n; ++i)
        spd(i, i) += static_cast<double>(n);
    Matrix rhs(n, 1);
    for (std::size_t i = 0; i < n; ++i)
        rhs(i, 0) = rng.uniform(-1, 1);
    ScopedSimdKernels flag(simd);
    for (auto _ : state) {
        CholeskyDecomposition chol(spd);
        benchmark::DoNotOptimize(chol.solve(rhs));
    }
}

void
BM_CholeskyScalar(benchmark::State &state)
{
    choleskyFlagged(state, false);
}
BENCHMARK(BM_CholeskyScalar)->Arg(8)->Arg(16)->Arg(50);

void
BM_CholeskySimd(benchmark::State &state)
{
    choleskyFlagged(state, true);
}
BENCHMARK(BM_CholeskySimd)->Arg(8)->Arg(16)->Arg(50);

void
BM_MatrixInverse(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(6);
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c)
            a(r, c) = rng.uniform(-1, 1);
        a(r, r) += 2.0;
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(inverse(a));
}
BENCHMARK(BM_MatrixInverse)->Arg(8)->Arg(15)->Arg(31);

void
BM_KdTreeNearest(benchmark::State &state)
{
    Rng rng(7);
    DynKdTree tree(5);
    for (int i = 0; i < 20000; ++i) {
        std::vector<double> p(5);
        for (double &v : p)
            v = rng.uniform(-3, 3);
        tree.insert(p, static_cast<std::uint32_t>(i));
    }
    std::vector<double> q(5, 0.0);
    for (auto _ : state) {
        q[0] = rng.uniform(-3, 3);
        benchmark::DoNotOptimize(tree.nearest(q));
    }
}
BENCHMARK(BM_KdTreeNearest);

void
BM_SortSampleRecords(benchmark::State &state)
{
    // The cem/bo sort: reward-keyed records carrying parameter vectors
    // and inline traces.
    Rng rng(8);
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<CemSample> master(n);
    for (std::size_t i = 0; i < n; ++i) {
        master[i].params = {rng.uniform(), rng.uniform(), rng.uniform()};
        master[i].reward = rng.uniform();
        for (double &t : master[i].trace)
            t = rng.uniform();
    }
    for (auto _ : state) {
        state.PauseTiming();
        std::vector<CemSample> copy = master;
        state.ResumeTiming();
        std::sort(copy.begin(), copy.end(),
                  [](const CemSample &a, const CemSample &b) {
                      return a.reward > b.reward;
                  });
        benchmark::DoNotOptimize(copy.data());
    }
}
BENCHMARK(BM_SortSampleRecords)->Arg(15)->Arg(50)->Arg(500);

void
BM_SymbolicApply(benchmark::State &state)
{
    SymbolicProblem problem = makeBlocksWorld(8, 1);
    std::vector<GroundAction> actions = groundActions(problem);
    SymbolicState current = problem.initial;
    std::size_t i = 0;
    for (auto _ : state) {
        const GroundAction &action = actions[i++ % actions.size()];
        if (action.applicable(current))
            benchmark::DoNotOptimize(action.apply(current));
        else
            benchmark::DoNotOptimize(&action);
    }
}
BENCHMARK(BM_SymbolicApply);

void
BM_ChamferDistanceTransform(benchmark::State &state)
{
    OccupancyGrid2D map = makeRandomObstacleMap(256, 256, 0.1, 9);
    for (auto _ : state)
        benchmark::DoNotOptimize(distanceTransform(map));
}
BENCHMARK(BM_ChamferDistanceTransform);

/**
 * --json mode: measure the castScan workload on the fine indoor map
 * with both engines (warmup per bench_common.h), assert bitwise
 * identity, and write a machine-readable baseline so future PRs can
 * track ns/ray and cells-visited/ray without parsing bench output.
 */
int
writeRaycastBaseline(const std::string &path)
{
    const int n_rays = 60;
    const std::size_t n_origins = 64;
    const double max_range = 20.0;
    const double fov = 4.0;
    OccupancyGrid2D map = fineIndoorMap();

    // Scan origins spread over free space, pfl-style.
    Rng rng(7);
    std::vector<Vec2> origins;
    while (origins.size() < n_origins) {
        Vec2 p{map.origin().x + rng.uniform(1.0, map.worldWidth() - 1.0),
               map.origin().y + rng.uniform(1.0, map.worldHeight() - 1.0)};
        if (!map.occupiedWorld(p))
            origins.push_back(p);
    }

    // Timed sweeps run the production (uncounted) engines — the stats
    // counters cost a per-step store each and would distort ns/ray.
    auto sweep = [&](RayEngine engine, std::vector<double> &ranges) {
        ranges.clear();
        std::vector<double> scan;
        for (const Vec2 &origin : origins) {
            castScan(map, origin, -2.0, fov, n_rays, max_range, scan,
                     engine);
            ranges.insert(ranges.end(), scan.begin(), scan.end());
        }
    };
    // Separate uninstrumented pass for traversal statistics.
    auto count = [&](RayEngine engine, RayCastStats &stats) {
        std::vector<double> scan;
        for (const Vec2 &origin : origins)
            castScanCounted(map, origin, -2.0, fov, n_rays, max_range,
                            scan, engine, stats);
    };

    std::vector<double> scalar_ranges, hier_ranges, packet_ranges;
    RayCastStats scalar_stats, hier_stats, packet_stats;
    // Warmup passes (not measured).
    for (int w = 0; w < rtr::bench::warmupRuns(); ++w) {
        sweep(RayEngine::Scalar, scalar_ranges);
        sweep(RayEngine::Hierarchical, hier_ranges);
        sweep(RayEngine::Packet, packet_ranges);
    }
    // Best-of-N to shed scheduler noise on shared machines.
    const int reps = 5;
    double scalar_sec = 1e300, hier_sec = 1e300, packet_sec = 1e300;
    for (int r = 0; r < reps; ++r) {
        Stopwatch scalar_timer;
        sweep(RayEngine::Scalar, scalar_ranges);
        scalar_sec = std::min(scalar_sec, scalar_timer.elapsedSec());
        Stopwatch hier_timer;
        sweep(RayEngine::Hierarchical, hier_ranges);
        hier_sec = std::min(hier_sec, hier_timer.elapsedSec());
        Stopwatch packet_timer;
        sweep(RayEngine::Packet, packet_ranges);
        packet_sec = std::min(packet_sec, packet_timer.elapsedSec());
    }
    count(RayEngine::Scalar, scalar_stats);
    count(RayEngine::Hierarchical, hier_stats);
    count(RayEngine::Packet, packet_stats);

    bool identical =
        scalar_ranges == hier_ranges && scalar_ranges == packet_ranges;
    const double rays =
        static_cast<double>(origins.size()) * n_rays;

    std::ofstream file(path);
    if (!file) {
        std::cerr << "cannot write " << path << "\n";
        return 1;
    }
    rtr::bench::JsonWriter json(file);
    json.beginObject();
    json.field("benchmark", "castScan");
    json.beginObject("map");
    json.field("generator", "indoor");
    json.field("width", map.width());
    json.field("height", map.height());
    json.field("resolution_m", map.resolution());
    json.endObject();
    json.field("rays", static_cast<long long>(rays));
    json.field("max_range_m", max_range);
    json.beginObject("scalar");
    json.field("ns_per_ray", scalar_sec * 1e9 / rays);
    json.field("cells_per_ray",
               static_cast<double>(scalar_stats.probes) / rays);
    json.endObject();
    json.beginObject("hierarchical");
    json.field("ns_per_ray", hier_sec * 1e9 / rays);
    json.field("cells_per_ray",
               static_cast<double>(hier_stats.probes) / rays);
    json.field("steps_per_ray",
               static_cast<double>(hier_stats.steps) / rays);
    json.endObject();
    json.beginObject("packet");
    json.field("ns_per_ray", packet_sec * 1e9 / rays);
    json.field("cells_per_ray",
               static_cast<double>(packet_stats.probes) / rays);
    json.field("steps_per_ray",
               static_cast<double>(packet_stats.steps) / rays);
    json.field("speedup", scalar_sec / packet_sec);
    json.field("bitwise_identical", identical);
    json.endObject();
    json.field("speedup", scalar_sec / hier_sec);
    json.field("bitwise_identical", identical);
    json.endObject();
    std::cout << "castScan baseline (" << static_cast<long long>(rays)
              << " rays, " << map.width() << "x" << map.height() << " @ "
              << map.resolution() << " m):\n"
              << "  scalar: " << scalar_sec * 1e9 / rays
              << " ns/ray, "
              << static_cast<double>(scalar_stats.probes) / rays
              << " cells/ray\n"
              << "  hier:   " << hier_sec * 1e9 / rays << " ns/ray, "
              << static_cast<double>(hier_stats.probes) / rays
              << " probes/ray\n"
              << "  packet: " << packet_sec * 1e9 / rays << " ns/ray, "
              << static_cast<double>(packet_stats.probes) / rays
              << " probes/ray, " << scalar_sec / packet_sec
              << "x vs scalar\n"
              << "  hier speedup: " << scalar_sec / hier_sec
              << "x, bitwise identical: "
              << (identical ? "yes" : "NO") << "\n"
              << "  wrote " << path << "\n";
    return identical ? 0 : 2;
}

/** Fill a matrix with uniform(-1, 1) draws. */
void
fillRandom(Matrix &m, Rng &rng)
{
    for (std::size_t i = 0; i < m.rows() * m.cols(); ++i)
        m.data()[i] = rng.uniform(-1, 1);
}

/** Best-of-@p reps seconds for one call of @p body, after one warmup. */
template <typename F>
double
bestOf(int reps, F &&body)
{
    body();
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        Stopwatch timer;
        body();
        best = std::min(best, timer.elapsedSec());
    }
    return best;
}

/**
 * --json mode, dense-linalg block: time the GEMM and Cholesky
 * micro-kernels scalar vs SIMD across the EKF/GP-relevant size range,
 * assert bitwise identity at every size, rerun the two matrix-bound
 * kernels end-to-end under --simd 0/1, and write BENCH_gemm.json so
 * future PRs can track GFLOP/s and kernel ROI seconds. Returns nonzero
 * if any scalar/SIMD pair differs bitwise.
 */
int
writeGemmBaseline(const std::string &path)
{
    const int reps = 5;
    Rng rng(11);
    bool all_identical = true;

    std::ofstream file(path);
    if (!file) {
        std::cerr << "cannot write " << path << "\n";
        return 1;
    }
    rtr::bench::JsonWriter json(file);
    json.beginObject();
    json.field("benchmark", "dense_linalg");
    json.field("simd_backend", simd::kBackendName);
    json.field("vector_width",
               static_cast<long long>(simd::VecD::kWidth));

    std::cout << "dense-linalg baseline (backend " << simd::kBackendName
              << ", width " << simd::VecD::kWidth << "):\n";

    // GEMM sweep. 8..35 bracket the EKF state sizes (n = 3 + 2L for
    // 4..16 landmarks); 50 is the GP's largest Gram matrix; 64/96 show
    // where the micro-kernel is heading asymptotically.
    json.beginArray("gemm");
    for (std::size_t n : {8u, 11u, 15u, 23u, 35u, 50u, 64u, 96u}) {
        Matrix a(n, n), b(n, n);
        fillRandom(a, rng);
        fillRandom(b, rng);
        // Enough multiplies per rep to dwarf timer granularity.
        const int iters = static_cast<int>(
            std::max<std::size_t>(1, 3000000 / (n * n * n)));
        Matrix out;
        double scalar_sec, simd_sec;
        {
            ScopedSimdKernels off(false);
            scalar_sec = bestOf(reps, [&] {
                for (int i = 0; i < iters; ++i)
                    out = a * b;
            }) / iters;
        }
        const Matrix scalar_out = out;
        {
            ScopedSimdKernels on(true);
            simd_sec = bestOf(reps, [&] {
                for (int i = 0; i < iters; ++i)
                    out = a * b;
            }) / iters;
        }
        const bool identical =
            std::memcmp(scalar_out.data(), out.data(),
                        sizeof(double) * n * n) == 0;
        all_identical = all_identical && identical;
        const double flops = 2.0 * static_cast<double>(n) * n * n;
        json.beginObject();
        json.field("n", static_cast<long long>(n));
        json.field("scalar_ns", scalar_sec * 1e9);
        json.field("simd_ns", simd_sec * 1e9);
        json.field("scalar_gflops", flops / scalar_sec * 1e-9);
        json.field("simd_gflops", flops / simd_sec * 1e-9);
        json.field("speedup", scalar_sec / simd_sec);
        json.field("bitwise_identical", identical);
        json.endObject();
        std::cout << "  gemm n=" << n << ": " << scalar_sec * 1e9
                  << " -> " << simd_sec * 1e9 << " ns ("
                  << flops / simd_sec * 1e-9 << " GFLOP/s, "
                  << scalar_sec / simd_sec << "x, bitwise "
                  << (identical ? "yes" : "NO") << ")\n";
    }
    json.endArray();

    // Cholesky sweep: factor + single-RHS solve (the GP predict shape).
    json.beginArray("cholesky");
    for (std::size_t n : {8u, 16u, 35u, 50u, 96u}) {
        Matrix g(n, n);
        fillRandom(g, rng);
        Matrix spd = multiplyTransposed(g, g);
        for (std::size_t i = 0; i < n; ++i)
            spd(i, i) += static_cast<double>(n);
        Matrix rhs(n, 1);
        fillRandom(rhs, rng);
        const int iters = static_cast<int>(
            std::max<std::size_t>(1, 1000000 / (n * n * n)));
        Matrix x;
        double scalar_sec, simd_sec;
        Matrix scalar_l, scalar_x;
        {
            ScopedSimdKernels off(false);
            scalar_sec = bestOf(reps, [&] {
                for (int i = 0; i < iters; ++i) {
                    CholeskyDecomposition chol(spd);
                    chol.solveInto(rhs, x);
                }
            }) / iters;
            scalar_l = CholeskyDecomposition(spd).lower();
            scalar_x = x;
        }
        {
            ScopedSimdKernels on(true);
            simd_sec = bestOf(reps, [&] {
                for (int i = 0; i < iters; ++i) {
                    CholeskyDecomposition chol(spd);
                    chol.solveInto(rhs, x);
                }
            }) / iters;
        }
        const Matrix simd_l = CholeskyDecomposition(spd).lower();
        const bool identical =
            std::memcmp(scalar_l.data(), simd_l.data(),
                        sizeof(double) * n * n) == 0 &&
            std::memcmp(scalar_x.data(), x.data(),
                        sizeof(double) * n) == 0;
        all_identical = all_identical && identical;
        json.beginObject();
        json.field("n", static_cast<long long>(n));
        json.field("scalar_ns", scalar_sec * 1e9);
        json.field("simd_ns", simd_sec * 1e9);
        json.field("speedup", scalar_sec / simd_sec);
        json.field("bitwise_identical", identical);
        json.endObject();
        std::cout << "  chol n=" << n << ": " << scalar_sec * 1e9
                  << " -> " << simd_sec * 1e9 << " ns ("
                  << scalar_sec / simd_sec << "x, bitwise "
                  << (identical ? "yes" : "NO") << ")\n";
    }
    json.endArray();

    // End-to-end: the two kernels whose ROI is ~entirely dense linalg.
    // bo runs with 5000 candidates (vs the default 25000) to keep the
    // baseline pass quick; acquisition still dominates its ROI.
    struct E2E
    {
        const char *kernel;
        std::vector<std::string> overrides;
    };
    const E2E runs[] = {
        {"ekfslam", {"--landmarks", "16", "--steps", "400"}},
        {"bo", {"--iterations", "45", "--candidates", "5000"}},
    };
    json.beginArray("end_to_end");
    for (const E2E &run : runs) {
        std::vector<std::string> scalar_args = run.overrides;
        scalar_args.insert(scalar_args.end(), {"--simd", "0"});
        std::vector<std::string> simd_args = run.overrides;
        simd_args.insert(simd_args.end(), {"--simd", "1"});
        const KernelReport scalar_report =
            rtr::bench::runKernelWarm(run.kernel, scalar_args);
        const KernelReport simd_report =
            rtr::bench::runKernelWarm(run.kernel, simd_args);
        json.beginObject();
        json.field("kernel", run.kernel);
        json.field("scalar_roi_seconds", scalar_report.roi_seconds);
        json.field("simd_roi_seconds", simd_report.roi_seconds);
        json.field("speedup",
                   scalar_report.roi_seconds / simd_report.roi_seconds);
        json.endObject();
        std::cout << "  " << run.kernel << ": "
                  << scalar_report.roi_seconds << " -> "
                  << simd_report.roi_seconds << " s ROI ("
                  << scalar_report.roi_seconds / simd_report.roi_seconds
                  << "x)\n";
    }
    json.endArray();
    json.field("bitwise_identical", all_identical);
    json.endObject();
    std::cout << "  wrote " << path << "\n";
    return all_identical ? 0 : 2;
}

} // namespace

/**
 * Custom main: `bench_micro --json [raycast_path [gemm_path]]` emits
 * the ray-cast baseline (default BENCH_raycast.json) and the dense-
 * linalg baseline (default BENCH_gemm.json) and exits; anything else
 * is handed to google-benchmark unchanged (after the shared harness
 * strips --trace/--counters).
 */
int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            // In --json mode this main owns the argv contract (the
            // google-benchmark path below has its own strict
            // ReportUnrecognizedArguments); reject anything that is
            // not the --json flag and its positional paths.
            rtr::bench::requireKnownOptions(
                argc, argv, {"--json [raycast.json [gemm.json]]"});
            std::string raycast_path = "BENCH_raycast.json";
            std::string gemm_path = "BENCH_gemm.json";
            if (i + 1 < argc && argv[i + 1][0] != '-') {
                raycast_path = argv[i + 1];
                if (i + 2 < argc && argv[i + 2][0] != '-')
                    gemm_path = argv[i + 2];
            }
            const int raycast_rc = writeRaycastBaseline(raycast_path);
            const int gemm_rc = writeGemmBaseline(gemm_path);
            return raycast_rc ? raycast_rc : gemm_rc;
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

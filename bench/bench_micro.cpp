/**
 * @file
 * google-benchmark microkernels: the primitive operations the paper's
 * per-kernel analyses identify as acceleration targets (ray-casting,
 * footprint collision checks, L2 norms, matrix multiply/invert, k-d
 * tree queries, record sorts, symbolic state application).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "arm/cspace.h"
#include "bench_common.h"
#include "util/stopwatch.h"
#include "control/cem.h"
#include "grid/footprint.h"
#include "grid/map_gen.h"
#include "grid/raycast.h"
#include "linalg/decomp.h"
#include "grid/distance_transform.h"
#include "linalg/matrix.h"
#include "pointcloud/dyn_kdtree.h"
#include "symbolic/blocks_world.h"
#include "symbolic/planner.h"
#include "util/rng.h"

namespace {

using namespace rtr;

void
BM_Raycast(benchmark::State &state)
{
    OccupancyGrid2D map = makeIndoorMap(240, 160, 0.25, 1);
    Rng rng(2);
    Vec2 origin{30.0, 20.0};
    while (map.occupiedWorld(origin))
        origin.x += 0.25;
    double angle = 0.0;
    for (auto _ : state) {
        angle += 0.1;
        benchmark::DoNotOptimize(castRay(map, origin, angle, 10.0));
    }
}
BENCHMARK(BM_Raycast);

/**
 * The pfl-style scan workload on a fine (0.05 m) indoor map — the
 * configuration the bitboard/pyramid engine targets. The map is the
 * standard 240x160 @ 0.25 m building upsampled 5x, so the geometry is
 * identical to the kernel's and only the cell count (1200x800) grows.
 */
OccupancyGrid2D
fineIndoorMap()
{
    return scaleMap(makeIndoorMap(240, 160, 0.25, 1), 5);
}

Vec2
freeScanOrigin(const OccupancyGrid2D &map)
{
    Vec2 origin{30.0, 20.0};
    while (map.occupiedWorld(origin))
        origin.x += map.resolution();
    return origin;
}

void
castScanFine(benchmark::State &state, RayEngine engine)
{
    OccupancyGrid2D map = fineIndoorMap();
    Vec2 origin = freeScanOrigin(map);
    std::vector<double> out;
    for (auto _ : state) {
        castScan(map, origin, -2.0, 4.0, 60, 20.0, out, engine);
        benchmark::DoNotOptimize(out.data());
    }
}

void
BM_CastScanScalar(benchmark::State &state)
{
    castScanFine(state, RayEngine::Scalar);
}
BENCHMARK(BM_CastScanScalar);

void
BM_CastScanHier(benchmark::State &state)
{
    castScanFine(state, RayEngine::Hierarchical);
}
BENCHMARK(BM_CastScanHier);

void
BM_FootprintCollision(benchmark::State &state)
{
    OccupancyGrid2D map = makeCityMap(512, 0.5, 1);
    RectFootprint car(4.8, 1.8);
    Rng rng(3);
    std::vector<Pose2> poses;
    for (int i = 0; i < 256; ++i)
        poses.push_back(Pose2{rng.uniform(10, 240), rng.uniform(10, 240),
                              rng.uniform(-kPi, kPi)});
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            car.collides(map, poses[i++ % poses.size()]));
    }
}
BENCHMARK(BM_FootprintCollision);

void
BM_L2Norm5D(benchmark::State &state)
{
    Rng rng(4);
    ConfigSpace space(5, -kPi, kPi);
    ArmConfig a = space.sample(rng);
    ArmConfig b = space.sample(rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ConfigSpace::distance(a, b));
        a[0] += 1e-9;  // defeat caching
    }
}
BENCHMARK(BM_L2Norm5D);

void
BM_MatrixMultiply(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(5);
    Matrix a(n, n), b(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            a(r, c) = rng.uniform(-1, 1);
            b(r, c) = rng.uniform(-1, 1);
        }
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(a * b);
}
BENCHMARK(BM_MatrixMultiply)->Arg(8)->Arg(15)->Arg(31);

void
BM_MatrixInverse(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(6);
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c)
            a(r, c) = rng.uniform(-1, 1);
        a(r, r) += 2.0;
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(inverse(a));
}
BENCHMARK(BM_MatrixInverse)->Arg(8)->Arg(15)->Arg(31);

void
BM_KdTreeNearest(benchmark::State &state)
{
    Rng rng(7);
    DynKdTree tree(5);
    for (int i = 0; i < 20000; ++i) {
        std::vector<double> p(5);
        for (double &v : p)
            v = rng.uniform(-3, 3);
        tree.insert(p, static_cast<std::uint32_t>(i));
    }
    std::vector<double> q(5, 0.0);
    for (auto _ : state) {
        q[0] = rng.uniform(-3, 3);
        benchmark::DoNotOptimize(tree.nearest(q));
    }
}
BENCHMARK(BM_KdTreeNearest);

void
BM_SortSampleRecords(benchmark::State &state)
{
    // The cem/bo sort: reward-keyed records carrying parameter vectors
    // and inline traces.
    Rng rng(8);
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<CemSample> master(n);
    for (std::size_t i = 0; i < n; ++i) {
        master[i].params = {rng.uniform(), rng.uniform(), rng.uniform()};
        master[i].reward = rng.uniform();
        for (double &t : master[i].trace)
            t = rng.uniform();
    }
    for (auto _ : state) {
        state.PauseTiming();
        std::vector<CemSample> copy = master;
        state.ResumeTiming();
        std::sort(copy.begin(), copy.end(),
                  [](const CemSample &a, const CemSample &b) {
                      return a.reward > b.reward;
                  });
        benchmark::DoNotOptimize(copy.data());
    }
}
BENCHMARK(BM_SortSampleRecords)->Arg(15)->Arg(50)->Arg(500);

void
BM_SymbolicApply(benchmark::State &state)
{
    SymbolicProblem problem = makeBlocksWorld(8, 1);
    std::vector<GroundAction> actions = groundActions(problem);
    SymbolicState current = problem.initial;
    std::size_t i = 0;
    for (auto _ : state) {
        const GroundAction &action = actions[i++ % actions.size()];
        if (action.applicable(current))
            benchmark::DoNotOptimize(action.apply(current));
        else
            benchmark::DoNotOptimize(&action);
    }
}
BENCHMARK(BM_SymbolicApply);

void
BM_ChamferDistanceTransform(benchmark::State &state)
{
    OccupancyGrid2D map = makeRandomObstacleMap(256, 256, 0.1, 9);
    for (auto _ : state)
        benchmark::DoNotOptimize(distanceTransform(map));
}
BENCHMARK(BM_ChamferDistanceTransform);

/**
 * --json mode: measure the castScan workload on the fine indoor map
 * with both engines (warmup per bench_common.h), assert bitwise
 * identity, and write a machine-readable baseline so future PRs can
 * track ns/ray and cells-visited/ray without parsing bench output.
 */
int
writeRaycastBaseline(const std::string &path)
{
    const int n_rays = 60;
    const std::size_t n_origins = 64;
    const double max_range = 20.0;
    const double fov = 4.0;
    OccupancyGrid2D map = fineIndoorMap();

    // Scan origins spread over free space, pfl-style.
    Rng rng(7);
    std::vector<Vec2> origins;
    while (origins.size() < n_origins) {
        Vec2 p{map.origin().x + rng.uniform(1.0, map.worldWidth() - 1.0),
               map.origin().y + rng.uniform(1.0, map.worldHeight() - 1.0)};
        if (!map.occupiedWorld(p))
            origins.push_back(p);
    }

    // Timed sweeps run the production (uncounted) engines — the stats
    // counters cost a per-step store each and would distort ns/ray.
    auto sweep = [&](RayEngine engine, std::vector<double> &ranges) {
        ranges.clear();
        std::vector<double> scan;
        for (const Vec2 &origin : origins) {
            castScan(map, origin, -2.0, fov, n_rays, max_range, scan,
                     engine);
            ranges.insert(ranges.end(), scan.begin(), scan.end());
        }
    };
    // Separate uninstrumented pass for traversal statistics.
    auto count = [&](RayEngine engine, RayCastStats &stats) {
        const double step = fov / n_rays;
        for (const Vec2 &origin : origins) {
            for (int i = 0; i < n_rays; ++i) {
                double angle = -2.0 + i * step;
                if (engine == RayEngine::Hierarchical)
                    castRayCounted(map, origin, angle, max_range, stats);
                else
                    castRayScalarCounted(map, origin, angle, max_range,
                                         stats);
            }
        }
    };

    std::vector<double> scalar_ranges, hier_ranges;
    RayCastStats scalar_stats, hier_stats;
    // Warmup passes (not measured).
    for (int w = 0; w < rtr::bench::warmupRuns(); ++w) {
        sweep(RayEngine::Scalar, scalar_ranges);
        sweep(RayEngine::Hierarchical, hier_ranges);
    }
    // Best-of-N to shed scheduler noise on shared machines.
    const int reps = 5;
    double scalar_sec = 1e300, hier_sec = 1e300;
    for (int r = 0; r < reps; ++r) {
        Stopwatch scalar_timer;
        sweep(RayEngine::Scalar, scalar_ranges);
        scalar_sec = std::min(scalar_sec, scalar_timer.elapsedSec());
        Stopwatch hier_timer;
        sweep(RayEngine::Hierarchical, hier_ranges);
        hier_sec = std::min(hier_sec, hier_timer.elapsedSec());
    }
    count(RayEngine::Scalar, scalar_stats);
    count(RayEngine::Hierarchical, hier_stats);

    bool identical = scalar_ranges == hier_ranges;
    const double rays =
        static_cast<double>(origins.size()) * n_rays;

    std::ofstream file(path);
    if (!file) {
        std::cerr << "cannot write " << path << "\n";
        return 1;
    }
    rtr::bench::JsonWriter json(file);
    json.beginObject();
    json.field("benchmark", "castScan");
    json.beginObject("map");
    json.field("generator", "indoor");
    json.field("width", map.width());
    json.field("height", map.height());
    json.field("resolution_m", map.resolution());
    json.endObject();
    json.field("rays", static_cast<long long>(rays));
    json.field("max_range_m", max_range);
    json.beginObject("scalar");
    json.field("ns_per_ray", scalar_sec * 1e9 / rays);
    json.field("cells_per_ray",
               static_cast<double>(scalar_stats.probes) / rays);
    json.endObject();
    json.beginObject("hierarchical");
    json.field("ns_per_ray", hier_sec * 1e9 / rays);
    json.field("cells_per_ray",
               static_cast<double>(hier_stats.probes) / rays);
    json.field("steps_per_ray",
               static_cast<double>(hier_stats.steps) / rays);
    json.endObject();
    json.field("speedup", scalar_sec / hier_sec);
    json.field("bitwise_identical", identical);
    json.endObject();
    std::cout << "castScan baseline (" << static_cast<long long>(rays)
              << " rays, " << map.width() << "x" << map.height() << " @ "
              << map.resolution() << " m):\n"
              << "  scalar: " << scalar_sec * 1e9 / rays
              << " ns/ray, "
              << static_cast<double>(scalar_stats.probes) / rays
              << " cells/ray\n"
              << "  hier:   " << hier_sec * 1e9 / rays << " ns/ray, "
              << static_cast<double>(hier_stats.probes) / rays
              << " probes/ray\n"
              << "  speedup: " << scalar_sec / hier_sec
              << "x, bitwise identical: "
              << (identical ? "yes" : "NO") << "\n"
              << "  wrote " << path << "\n";
    return identical ? 0 : 2;
}

} // namespace

/**
 * Custom main: `bench_micro --json [path]` emits the ray-cast baseline
 * (default BENCH_raycast.json) and exits; anything else is handed to
 * google-benchmark unchanged (after the shared harness strips
 * --trace/--counters).
 */
int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            std::string path = "BENCH_raycast.json";
            if (i + 1 < argc && argv[i + 1][0] != '-')
                path = argv[i + 1];
            return writeRaycastBaseline(path);
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

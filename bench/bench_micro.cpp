/**
 * @file
 * google-benchmark microkernels: the primitive operations the paper's
 * per-kernel analyses identify as acceleration targets (ray-casting,
 * footprint collision checks, L2 norms, matrix multiply/invert, k-d
 * tree queries, record sorts, symbolic state application).
 */

#include <benchmark/benchmark.h>

#include <algorithm>

#include "arm/cspace.h"
#include "control/cem.h"
#include "grid/footprint.h"
#include "grid/map_gen.h"
#include "grid/raycast.h"
#include "linalg/decomp.h"
#include "grid/distance_transform.h"
#include "linalg/matrix.h"
#include "pointcloud/dyn_kdtree.h"
#include "symbolic/blocks_world.h"
#include "symbolic/planner.h"
#include "util/rng.h"

namespace {

using namespace rtr;

void
BM_Raycast(benchmark::State &state)
{
    OccupancyGrid2D map = makeIndoorMap(240, 160, 0.25, 1);
    Rng rng(2);
    Vec2 origin{30.0, 20.0};
    while (map.occupiedWorld(origin))
        origin.x += 0.25;
    double angle = 0.0;
    for (auto _ : state) {
        angle += 0.1;
        benchmark::DoNotOptimize(castRay(map, origin, angle, 10.0));
    }
}
BENCHMARK(BM_Raycast);

void
BM_FootprintCollision(benchmark::State &state)
{
    OccupancyGrid2D map = makeCityMap(512, 0.5, 1);
    RectFootprint car(4.8, 1.8);
    Rng rng(3);
    std::vector<Pose2> poses;
    for (int i = 0; i < 256; ++i)
        poses.push_back(Pose2{rng.uniform(10, 240), rng.uniform(10, 240),
                              rng.uniform(-kPi, kPi)});
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            car.collides(map, poses[i++ % poses.size()]));
    }
}
BENCHMARK(BM_FootprintCollision);

void
BM_L2Norm5D(benchmark::State &state)
{
    Rng rng(4);
    ConfigSpace space(5, -kPi, kPi);
    ArmConfig a = space.sample(rng);
    ArmConfig b = space.sample(rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ConfigSpace::distance(a, b));
        a[0] += 1e-9;  // defeat caching
    }
}
BENCHMARK(BM_L2Norm5D);

void
BM_MatrixMultiply(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(5);
    Matrix a(n, n), b(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            a(r, c) = rng.uniform(-1, 1);
            b(r, c) = rng.uniform(-1, 1);
        }
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(a * b);
}
BENCHMARK(BM_MatrixMultiply)->Arg(8)->Arg(15)->Arg(31);

void
BM_MatrixInverse(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(6);
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c)
            a(r, c) = rng.uniform(-1, 1);
        a(r, r) += 2.0;
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(inverse(a));
}
BENCHMARK(BM_MatrixInverse)->Arg(8)->Arg(15)->Arg(31);

void
BM_KdTreeNearest(benchmark::State &state)
{
    Rng rng(7);
    DynKdTree tree(5);
    for (int i = 0; i < 20000; ++i) {
        std::vector<double> p(5);
        for (double &v : p)
            v = rng.uniform(-3, 3);
        tree.insert(p, static_cast<std::uint32_t>(i));
    }
    std::vector<double> q(5, 0.0);
    for (auto _ : state) {
        q[0] = rng.uniform(-3, 3);
        benchmark::DoNotOptimize(tree.nearest(q));
    }
}
BENCHMARK(BM_KdTreeNearest);

void
BM_SortSampleRecords(benchmark::State &state)
{
    // The cem/bo sort: reward-keyed records carrying parameter vectors
    // and inline traces.
    Rng rng(8);
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<CemSample> master(n);
    for (std::size_t i = 0; i < n; ++i) {
        master[i].params = {rng.uniform(), rng.uniform(), rng.uniform()};
        master[i].reward = rng.uniform();
        for (double &t : master[i].trace)
            t = rng.uniform();
    }
    for (auto _ : state) {
        state.PauseTiming();
        std::vector<CemSample> copy = master;
        state.ResumeTiming();
        std::sort(copy.begin(), copy.end(),
                  [](const CemSample &a, const CemSample &b) {
                      return a.reward > b.reward;
                  });
        benchmark::DoNotOptimize(copy.data());
    }
}
BENCHMARK(BM_SortSampleRecords)->Arg(15)->Arg(50)->Arg(500);

void
BM_SymbolicApply(benchmark::State &state)
{
    SymbolicProblem problem = makeBlocksWorld(8, 1);
    std::vector<GroundAction> actions = groundActions(problem);
    SymbolicState current = problem.initial;
    std::size_t i = 0;
    for (auto _ : state) {
        const GroundAction &action = actions[i++ % actions.size()];
        if (action.applicable(current))
            benchmark::DoNotOptimize(action.apply(current));
        else
            benchmark::DoNotOptimize(&action);
    }
}
BENCHMARK(BM_SymbolicApply);

void
BM_ChamferDistanceTransform(benchmark::State &state)
{
    OccupancyGrid2D map = makeRandomObstacleMap(256, 256, 0.1, 9);
    for (auto _ : state)
        benchmark::DoNotOptimize(distanceTransform(map));
}
BENCHMARK(BM_ChamferDistanceTransform);

} // namespace

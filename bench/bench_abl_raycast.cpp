/**
 * @file
 * Ablation: the two axes that decide whether SIMD ray packets can pay
 * on a given host/map (EXPERIMENTS.md "Ray-cast engine" reads its
 * verdict from this data):
 *
 *  - Octant coherence: packets amortize pyramid descent across
 *    coherent rays, so sweeping a scan's field of view from 2*pi
 *    (all 8 octants) down to near-parallel rays bounds what perfect
 *    binning could ever recover.
 *  - Pyramid stride: the packet advance pays off only between probe
 *    events, so the free-run length the pyramid certifies (DDA steps
 *    per probe) decides how often the engine falls off the vector
 *    path. Sweeping map openness moves that stride from ~1.5 cells
 *    (coarse indoor) to ~60 (empty map).
 *
 * Every timed configuration asserts bitwise identity across the three
 * engines and the binary exits 2 on any divergence, like
 * `bench_micro --json`.
 */

#include <cstdlib>

#include "bench_common.h"
#include "grid/map_gen.h"
#include "grid/raycast.h"
#include "util/stopwatch.h"

namespace {

using namespace rtr;
using namespace rtr::bench;

bool g_identical = true;

struct EngineTimes
{
    double scalar_sec = 0.0;
    double hier_sec = 0.0;
    double packet_sec = 0.0;
    double rays = 0.0;
};

/**
 * Best-of-5 castScan timing for all three engines over a set of scan
 * origins, with identity asserted on the concatenated ranges.
 */
EngineTimes
timeEngines(const OccupancyGrid2D &map, const std::vector<Vec2> &origins,
            double start_angle, double fov, int n_rays, double max_range)
{
    auto sweep = [&](RayEngine engine, std::vector<double> &ranges) {
        ranges.clear();
        std::vector<double> scan;
        for (const Vec2 &origin : origins) {
            castScan(map, origin, start_angle, fov, n_rays, max_range,
                     scan, engine);
            ranges.insert(ranges.end(), scan.begin(), scan.end());
        }
    };
    std::vector<double> scalar_ranges, hier_ranges, packet_ranges;
    for (int w = 0; w < warmupRuns(); ++w) {
        sweep(RayEngine::Scalar, scalar_ranges);
        sweep(RayEngine::Hierarchical, hier_ranges);
        sweep(RayEngine::Packet, packet_ranges);
    }
    EngineTimes times;
    times.scalar_sec = times.hier_sec = times.packet_sec = 1e300;
    for (int r = 0; r < 5; ++r) {
        Stopwatch scalar_timer;
        sweep(RayEngine::Scalar, scalar_ranges);
        times.scalar_sec =
            std::min(times.scalar_sec, scalar_timer.elapsedSec());
        Stopwatch hier_timer;
        sweep(RayEngine::Hierarchical, hier_ranges);
        times.hier_sec = std::min(times.hier_sec, hier_timer.elapsedSec());
        Stopwatch packet_timer;
        sweep(RayEngine::Packet, packet_ranges);
        times.packet_sec =
            std::min(times.packet_sec, packet_timer.elapsedSec());
    }
    if (scalar_ranges != hier_ranges || scalar_ranges != packet_ranges)
        g_identical = false;
    times.rays = static_cast<double>(origins.size()) *
                 static_cast<double>(n_rays);
    return times;
}

/** Free-space scan origins, pfl-style. */
std::vector<Vec2>
freeOrigins(const OccupancyGrid2D &map, std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Vec2> origins;
    while (origins.size() < n) {
        Vec2 p{map.origin().x + rng.uniform(1.0, map.worldWidth() - 1.0),
               map.origin().y + rng.uniform(1.0, map.worldHeight() - 1.0)};
        if (!map.occupiedWorld(p))
            origins.push_back(p);
    }
    return origins;
}

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv);
    requireKnownOptions(argc, argv);

    banner("ablation — ray-packet engine: octant coherence and "
           "pyramid stride",
           "SIMD packets amortize pyramid descent across coherent rays; "
           "their payoff is bounded by how long the pyramid's certified "
           "free runs are");

    // ---- Sweep A: octant coherence at fixed map ----
    // One free origin on the fine indoor map, 3840 rays, field of view
    // narrowing from all 8 octants to near-parallel rays. If packets
    // lose even at fov=0.02 (every lane in one octant, nearly
    // identical traversal), no amount of binning can save them here.
    OccupancyGrid2D fine = makeIndoorMap(1200, 800, 0.05, 1);
    const std::vector<Vec2> one_origin = freeOrigins(fine, 1, 7);
    Table coherence({"fov (rad)", "octants", "scalar ns/ray",
                     "packet ns/ray", "packet vs scalar",
                     "packet vs hier"});
    for (double fov : {6.2832, 1.5708, 0.3927, 0.02}) {
        EngineTimes t =
            timeEngines(fine, one_origin, -fov / 2.0, fov, 3840, 20.0);
        const int octants = fov > 6.0 ? 8 : (fov > 1.5 ? 3 : 1);
        coherence.addRow(
            {Table::num(fov, 4), std::to_string(octants),
             Table::num(t.scalar_sec * 1e9 / t.rays, 0),
             Table::num(t.packet_sec * 1e9 / t.rays, 0),
             Table::num(t.scalar_sec / t.packet_sec, 2) + "x",
             Table::num(t.hier_sec / t.packet_sec, 2) + "x"});
    }
    coherence.print();

    // ---- Sweep B: pyramid stride across map openness ----
    // 64 pfl-style origins x 60 beams. The stride column (hier DDA
    // steps per probe) is what the packet engine's vector path gets to
    // run between scalar probe events.
    std::cout << "\n";
    Table stride({"map", "stride (steps/probe)", "scalar ns/ray",
                  "hier ns/ray", "packet ns/ray", "packet vs scalar"});
    struct MapCase
    {
        const char *name;
        OccupancyGrid2D map;
        double max_range;
    };
    MapCase cases[] = {
        {"empty 1200x800 @ 0.05", OccupancyGrid2D(1200, 800, 0.05), 20.0},
        {"sparse 1200x800 @ 0.05",
         makeRandomObstacleMap(1200, 800, 0.0005, 5), 20.0},
        {"indoor 1200x800 @ 0.05 (bench map)", std::move(fine), 20.0},
        {"indoor 240x160 @ 0.25 (pfl map)",
         makeIndoorMap(240, 160, 0.25, 1), 10.0},
    };
    for (MapCase &c : cases) {
        const std::vector<Vec2> origins = freeOrigins(c.map, 64, 7);
        EngineTimes t = timeEngines(c.map, origins, -2.0, 4.0, 60,
                                    c.max_range);
        RayCastStats stats;
        std::vector<double> scan;
        for (const Vec2 &origin : origins)
            castScanCounted(c.map, origin, -2.0, 4.0, 60, c.max_range,
                            scan, RayEngine::Hierarchical, stats);
        stride.addRow(
            {c.name,
             Table::num(static_cast<double>(stats.steps) /
                            static_cast<double>(stats.probes),
                        1),
             Table::num(t.scalar_sec * 1e9 / t.rays, 0),
             Table::num(t.hier_sec * 1e9 / t.rays, 0),
             Table::num(t.packet_sec * 1e9 / t.rays, 0),
             Table::num(t.scalar_sec / t.packet_sec, 2) + "x"});
    }
    stride.print();

    std::cout << "\nbitwise identical across engines: "
              << (g_identical ? "yes" : "NO") << "\n";
    return g_identical ? 0 : 2;
}

/**
 * @file
 * §V.02 ekfslam — matrix-operation share (paper: > 85% of execution
 * time) and the Fig. 3 convergence behavior.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    rtr::bench::requireKnownOptions(argc, argv);
    using namespace rtr;
    using namespace rtr::bench;

    banner("02.ekfslam — EKF simultaneous localization and mapping",
           "matrix operations take > 85% of execution time; estimates "
           "converge with shrinking uncertainty (Fig. 3)");

    Table table({"landmarks", "matrix-ops share", "pose err (m)",
                 "landmark err (m)", "cov trace: start -> end",
                 "ROI (ms)"});
    for (int landmarks : {4, 6, 10, 16}) {
        KernelReport report = runKernel(
            "ekfslam", {"--landmarks", std::to_string(landmarks)});
        const auto &trace = report.series.at("cov_trace");
        table.addRow(
            {std::to_string(landmarks),
             Table::pct(report.metrics.at("matrix_ops_fraction")),
             Table::num(report.metrics.at("final_pose_error_m"), 3),
             Table::num(report.metrics.at("mean_landmark_error_m"), 3),
             Table::num(trace.front(), 1) + " -> " +
                 Table::num(trace.back(), 3),
             Table::num(report.roi_seconds * 1e3, 1)});
    }
    table.print();

    KernelReport fig3 = runKernel("ekfslam");
    std::cout << "\nFig. 3 robot pose error over time (m): "
              << seriesSummary(fig3.series.at("pose_error")) << "\n";
    std::cout << "measured matrix-ops share at the paper's 6-landmark "
                 "setting: "
              << Table::pct(fig3.metrics.at("matrix_ops_fraction"))
              << "   (paper: > 85%)\n";
    return 0;
}

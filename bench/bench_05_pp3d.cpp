/**
 * @file
 * §V.05 pp3d — collision detection and graph search are the two
 * bottlenecks of 3-D UAV planning.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    rtr::bench::requireKnownOptions(argc, argv);
    using namespace rtr;
    using namespace rtr::bench;

    banner("05.pp3d — 3-D UAV path planning",
           "collision detection + irregular graph search dominate "
           "(Fig. 6)");

    Table table({"volume", "collision share", "search share (rest)",
                 "expanded", "path (m)", "ROI (ms)"});
    for (int size : {96, 160, 224}) {
        KernelReport report =
            runKernel("pp3d", {"--map-size", std::to_string(size)});
        double collision = report.metrics.at("collision_fraction");
        table.addRow(
            {std::to_string(size) + "^2 x 24",
             Table::pct(collision), Table::pct(1.0 - collision),
             Table::count(static_cast<long long>(
                 report.metrics.at("expanded"))),
             Table::num(report.metrics.at("path_cost_m"), 0),
             Table::num(report.roi_seconds * 1e3, 1)});
    }
    table.print();
    std::cout << "\n(the non-collision share is the 26-connected A* "
                 "search: heap traffic and irregular g-value updates — "
                 "the serialization bottleneck the paper discusses)\n";
    return 0;
}

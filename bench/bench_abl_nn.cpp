/**
 * @file
 * Ablation: nearest-neighbor engines.
 *
 * Two axes, matching the paper's claim that NN search is 31-49% of the
 * sampling-based planners and a major share of ICP:
 *
 *  1. structure: k-d tree vs brute-force scan inside RRT (the original
 *     ablation — what having a tree at all buys as the tree grows);
 *  2. layout: the leaf-bucketed SoA "bucket" engine vs the one-point-
 *     per-node "node" reference tree, micro (build / query / insert-
 *     heavy) and end-to-end on the five NN-heavy kernels via --nn.
 *
 * Both engines return exactly identical hits under the (dist2, id)
 * tie-break contract; the bench asserts this on every micro workload.
 *
 * `--json [path]` additionally writes BENCH_nn.json (default path) so
 * EXPERIMENTS.md tracks measured numbers.
 */

#include <cstring>

#include "bench_common.h"
#include "pointcloud/bucket_kdtree.h"
#include "pointcloud/dyn_kdtree.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace rtr;
using namespace rtr::bench;

/** Best-of-@p reps seconds for one call of @p body, after one warmup. */
template <typename F>
double
bestOf(int reps, F &&body)
{
    body();
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        Stopwatch timer;
        body();
        best = std::min(best, timer.elapsedSec());
    }
    return best;
}

/** Uniform points in the arm-planner range, 5-D joint space. */
std::vector<std::vector<double>>
randomPoints(std::size_t n, std::size_t dim, Rng &rng)
{
    std::vector<std::vector<double>> pts(n, std::vector<double>(dim));
    for (auto &p : pts)
        for (double &v : p)
            v = rng.uniform(-3.0, 3.0);
    return pts;
}

/** Exact hit-list equality: same ids AND bitwise-same dist2. */
bool
sameHits(const std::vector<KdHit> &a, const std::vector<KdHit> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].id != b[i].id || a[i].dist2 != b[i].dist2)
            return false;
    return true;
}

/** One micro size-point: both engines over the same workload. */
struct MicroResult
{
    std::size_t n = 0;
    double node_build_ms = 0.0, bucket_build_ms = 0.0;
    double node_nn_us = 0.0, bucket_nn_us = 0.0;
    double node_knn_us = 0.0, bucket_knn_us = 0.0;
    double node_radius_us = 0.0, bucket_radius_us = 0.0;
    double node_insert_us = 0.0, bucket_insert_us = 0.0;
    bool identical = true;
};

/**
 * Micro comparison at one size: static build + nearest / kNearest /
 * radius query cost, plus the RRT-style interleaved insert+nearest
 * loop, node vs bucket. Verifies exact result identity throughout.
 */
MicroResult
microAt(std::size_t n, Rng &rng)
{
    constexpr std::size_t kDim = 5;
    constexpr std::size_t kK = 10;
    constexpr double kRadius = 0.6;
    const int reps = 3;
    const std::size_t n_queries = 2000;

    MicroResult res;
    res.n = n;
    const auto points = randomPoints(n, kDim, rng);
    const auto queries = randomPoints(n_queries, kDim, rng);

    DynKdTree node(kDim);
    DynBucketKdTree bucket(kDim);
    res.node_build_ms = bestOf(reps, [&] {
        node.clear();
        for (std::size_t i = 0; i < n; ++i)
            node.insert(points[i], static_cast<std::uint32_t>(i));
    }) * 1e3;
    res.bucket_build_ms = bestOf(reps, [&] {
        bucket.build(points);
    }) * 1e3;

    double sink = 0.0;
    res.node_nn_us = bestOf(reps, [&] {
        for (const auto &q : queries)
            sink += node.nearest(q).dist2;
    }) * 1e6 / static_cast<double>(n_queries);
    res.bucket_nn_us = bestOf(reps, [&] {
        for (const auto &q : queries)
            sink += bucket.nearest(q).dist2;
    }) * 1e6 / static_cast<double>(n_queries);

    std::vector<KdHit> node_hits, bucket_hits;
    res.node_knn_us = bestOf(reps, [&] {
        for (const auto &q : queries) {
            node.kNearestInto(q, kK, node_hits);
            sink += node_hits.back().dist2;
        }
    }) * 1e6 / static_cast<double>(n_queries);
    res.bucket_knn_us = bestOf(reps, [&] {
        for (const auto &q : queries) {
            bucket.kNearestInto(q, kK, bucket_hits);
            sink += bucket_hits.back().dist2;
        }
    }) * 1e6 / static_cast<double>(n_queries);

    res.node_radius_us = bestOf(reps, [&] {
        for (const auto &q : queries) {
            node.radiusSearchInto(q, kRadius, node_hits);
            sink += static_cast<double>(node_hits.size());
        }
    }) * 1e6 / static_cast<double>(n_queries);
    res.bucket_radius_us = bestOf(reps, [&] {
        for (const auto &q : queries) {
            bucket.radiusSearchInto(q, kRadius, bucket_hits);
            sink += static_cast<double>(bucket_hits.size());
        }
    }) * 1e6 / static_cast<double>(n_queries);

    // RRT-style loop: alternate insert and nearest on a growing tree.
    res.node_insert_us = bestOf(reps, [&] {
        DynKdTree t(kDim);
        for (std::size_t i = 0; i < n; ++i) {
            t.insert(points[i], static_cast<std::uint32_t>(i));
            sink += t.nearest(queries[i % n_queries]).dist2;
        }
    }) * 1e6 / static_cast<double>(n);
    res.bucket_insert_us = bestOf(reps, [&] {
        DynBucketKdTree t(kDim);
        for (std::size_t i = 0; i < n; ++i) {
            t.insert(points[i], static_cast<std::uint32_t>(i));
            sink += t.nearest(queries[i % n_queries]).dist2;
        }
    }) * 1e6 / static_cast<double>(n);
    if (sink < 0)
        std::cout << "";  // keep the measurements live

    // Identity check over every query, all three query kinds.
    for (const auto &q : queries) {
        KdHit a = node.nearest(q);
        KdHit b = bucket.nearest(q);
        if (a.id != b.id || a.dist2 != b.dist2)
            res.identical = false;
        node.kNearestInto(q, kK, node_hits);
        bucket.kNearestInto(q, kK, bucket_hits);
        if (!sameHits(node_hits, bucket_hits))
            res.identical = false;
        node.radiusSearchInto(q, kRadius, node_hits);
        bucket.radiusSearchInto(q, kRadius, bucket_hits);
        if (!sameHits(node_hits, bucket_hits))
            res.identical = false;
    }
    return res;
}

/** End-to-end: one kernel under --nn node vs --nn bucket. */
struct E2eResult
{
    std::string kernel;
    double node_roi_s = 0.0;
    double bucket_roi_s = 0.0;
    /** Output metrics agree exactly between the two engines. */
    bool identical = true;
};

/**
 * Kernel-output metrics that must be engine-independent. Timing
 * metrics (fractions, seconds) legitimately differ; everything
 * counting work or measuring solution quality must not.
 */
const std::vector<std::string> kOutputMetrics = {
    "path_cost_rad",   "path_cost_m",     "tree_size",
    "samples",         "rewires",         "roadmap_nodes",
    "roadmap_edges",   "mean_pose_error_m", "final_rmse_m",
    "model_points",    "cost_before_rad", "cost_after_rad",
    "shortcuts_applied",
};

/** Reduced-but-representative configs for the five NN-heavy kernels. */
struct E2eRow
{
    const char *kernel;
    std::vector<std::string> overrides;
    /** Seeds to sum ROI over (planner instances are sub-ms; a sweep
     *  covers easy and hard start/goal pairs and sheds timer noise). */
    int n_seeds = 1;
    /** Also vary --instance-seed (the arm kernels' start/goal draw). */
    bool instance_seed = false;
};

const std::vector<E2eRow> kE2eRows = {
    {"srec", {"--frames", "8"}, 2, false},
    {"prm", {}, 6, true},
    {"rrt", {}, 6, true},
    {"rrtstar", {"--samples", "4000"}, 6, true},
    {"rrtpp", {}, 6, true},
};

E2eResult
e2eKernel(const E2eRow &row)
{
    E2eResult res;
    res.kernel = row.kernel;
    for (int seed = 1; seed <= row.n_seeds; ++seed) {
        std::vector<std::string> base = row.overrides;
        base.insert(base.end(), {"--seed", std::to_string(seed)});
        if (row.instance_seed)
            base.insert(base.end(),
                        {"--instance-seed", std::to_string(seed)});
        std::vector<std::string> node_args = base;
        node_args.insert(node_args.end(), {"--nn", "node"});
        std::vector<std::string> bucket_args = base;
        bucket_args.insert(bucket_args.end(), {"--nn", "bucket"});

        const KernelReport node_report =
            runKernelWarm(row.kernel, node_args);
        const KernelReport bucket_report =
            runKernelWarm(row.kernel, bucket_args);
        res.node_roi_s += node_report.roi_seconds;
        res.bucket_roi_s += bucket_report.roi_seconds;
        for (const std::string &m : kOutputMetrics) {
            const bool in_node = node_report.metrics.count(m) != 0;
            const bool in_bucket = bucket_report.metrics.count(m) != 0;
            if (in_node != in_bucket ||
                (in_node && node_report.metrics.at(m) !=
                                bucket_report.metrics.at(m)))
                res.identical = false;
        }
    }
    return res;
}

void
writeJson(const std::string &path,
          const std::vector<MicroResult> &micro,
          const std::vector<E2eResult> &e2e, bool all_identical)
{
    std::ofstream file(path);
    if (!file) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    JsonWriter json(file);
    json.beginObject();
    json.field("benchmark", "nn_engines");
    json.field("dim", 5);
    json.field("leaf_capacity",
               static_cast<long long>(detail::BucketKdCore::kLeafCapacity));
    json.beginArray("micro");
    for (const MicroResult &m : micro) {
        json.beginObject();
        json.field("n", static_cast<long long>(m.n));
        json.field("node_build_ms", m.node_build_ms);
        json.field("bucket_build_ms", m.bucket_build_ms);
        json.field("node_nearest_us", m.node_nn_us);
        json.field("bucket_nearest_us", m.bucket_nn_us);
        json.field("node_knearest_us", m.node_knn_us);
        json.field("bucket_knearest_us", m.bucket_knn_us);
        json.field("node_radius_us", m.node_radius_us);
        json.field("bucket_radius_us", m.bucket_radius_us);
        json.field("node_insert_nearest_us", m.node_insert_us);
        json.field("bucket_insert_nearest_us", m.bucket_insert_us);
        json.field("nearest_speedup", m.node_nn_us / m.bucket_nn_us);
        json.field("identical", m.identical);
        json.endObject();
    }
    json.endArray();
    json.beginArray("end_to_end");
    for (const E2eResult &r : e2e) {
        json.beginObject();
        json.field("kernel", r.kernel);
        json.field("node_roi_seconds", r.node_roi_s);
        json.field("bucket_roi_seconds", r.bucket_roi_s);
        json.field("speedup", r.node_roi_s / r.bucket_roi_s);
        json.field("outputs_identical", r.identical);
        json.endObject();
    }
    json.endArray();
    json.field("all_identical", all_identical);
    json.endObject();
    std::cout << "\nwrote " << path << "\n";
}

/** The original ablation: kd-tree vs brute force inside RRT. */
void
structureAblation()
{
    Table micro({"tree size", "kd-tree us/query", "brute us/query",
                 "speedup"});
    Rng rng(1);
    for (std::size_t n : {1000u, 10000u, 50000u}) {
        DynKdTree tree(5);
        const auto points = randomPoints(n, 5, rng);
        for (std::size_t i = 0; i < n; ++i)
            tree.insert(points[i], static_cast<std::uint32_t>(i));
        const auto qs = randomPoints(2000, 5, rng);

        Stopwatch kd_timer;
        double checksum = 0.0;
        for (const auto &q : qs)
            checksum += tree.nearest(q).dist2;
        double kd_us = kd_timer.elapsedSec() * 1e6 /
                       static_cast<double>(qs.size());

        Stopwatch brute_timer;
        for (const auto &q : qs) {
            double best = 1e300;
            for (const auto &p : points) {
                double d2 = 0.0;
                for (std::size_t d = 0; d < 5; ++d) {
                    double diff = p[d] - q[d];
                    d2 += diff * diff;
                }
                best = std::min(best, d2);
            }
            checksum += best;
        }
        double brute_us = brute_timer.elapsedSec() * 1e6 /
                          static_cast<double>(qs.size());

        micro.addRow({Table::count(static_cast<long long>(n)),
                      Table::num(kd_us, 2), Table::num(brute_us, 2),
                      Table::num(brute_us / kd_us, 1) + "x"});
        if (checksum < 0)
            std::cout << "";  // keep the checksum live
    }
    micro.print();

    std::cout << "\nend-to-end rrt kernel (mean of 8 seeds):\n";
    Table e2e({"nn structure", "ROI ms (mean)", "nn share (mean)"});
    for (int brute : {0, 1}) {
        RunningStat roi, nn;
        for (int seed = 1; seed <= 8; ++seed) {
            KernelReport report = runKernel(
                "rrt", {"--no-kdtree", std::to_string(brute), "--seed",
                        std::to_string(seed), "--instance-seed",
                        std::to_string(seed)});
            roi.add(report.roi_seconds * 1e3);
            nn.add(report.metrics.at("nn_fraction"));
        }
        e2e.addRow({brute ? "brute force" : "kd-tree",
                    Table::num(roi.mean(), 2), Table::pct(nn.mean())});
    }
    e2e.print();
}

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv);
    requireKnownOptions(argc, argv, {"--json [path]"});
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json_path = "BENCH_nn.json";
            if (i + 1 < argc && argv[i + 1][0] != '-')
                json_path = argv[i + 1];
        }
    }

    banner("ablation — nearest-neighbor engines",
           "NN search is 31-49% of the sampling-based planners and a "
           "major share of ICP (Table 1 / Fig. 5)");

    std::cout << "\n[1] structure: kd-tree vs brute-force scan (RRT)\n";
    structureAblation();

    std::cout << "\n[2] layout: bucket (leaf-bucketed SoA) vs node "
                 "(one-point-per-node) engine, 5-D\n";
    Table layout({"points", "phase", "node", "bucket", "speedup",
                  "identical"});
    std::vector<MicroResult> micro;
    Rng rng(3);
    bool all_identical = true;
    for (std::size_t n : {1000u, 10000u, 100000u}) {
        MicroResult m = microAt(n, rng);
        micro.push_back(m);
        all_identical = all_identical && m.identical;
        const std::string count = Table::count(static_cast<long long>(n));
        const std::string same = m.identical ? "yes" : "NO";
        layout.addRow({count, "build (ms)",
                       Table::num(m.node_build_ms, 2),
                       Table::num(m.bucket_build_ms, 2),
                       Table::num(m.node_build_ms / m.bucket_build_ms, 1) +
                           "x",
                       same});
        layout.addRow({count, "nearest (us)", Table::num(m.node_nn_us, 2),
                       Table::num(m.bucket_nn_us, 2),
                       Table::num(m.node_nn_us / m.bucket_nn_us, 1) + "x",
                       same});
        layout.addRow({count, "kNearest-10 (us)",
                       Table::num(m.node_knn_us, 2),
                       Table::num(m.bucket_knn_us, 2),
                       Table::num(m.node_knn_us / m.bucket_knn_us, 1) +
                           "x",
                       same});
        layout.addRow({count, "radius 0.6 (us)",
                       Table::num(m.node_radius_us, 2),
                       Table::num(m.bucket_radius_us, 2),
                       Table::num(m.node_radius_us / m.bucket_radius_us,
                                  1) +
                           "x",
                       same});
        layout.addRow({count, "insert+nearest (us)",
                       Table::num(m.node_insert_us, 2),
                       Table::num(m.bucket_insert_us, 2),
                       Table::num(m.node_insert_us / m.bucket_insert_us,
                                  1) +
                           "x",
                       same});
    }
    layout.print();

    std::cout << "\n[3] end-to-end: the five NN-heavy kernels, "
                 "--nn node vs --nn bucket (ROI summed over a seed "
                 "sweep)\n";
    Table e2e_table({"kernel", "node ROI ms", "bucket ROI ms", "speedup",
                     "outputs identical"});
    std::vector<E2eResult> e2e;
    for (const E2eRow &row : kE2eRows) {
        E2eResult r = e2eKernel(row);
        e2e.push_back(r);
        all_identical = all_identical && r.identical;
        e2e_table.addRow({r.kernel, Table::num(r.node_roi_s * 1e3, 2),
                          Table::num(r.bucket_roi_s * 1e3, 2),
                          Table::num(r.node_roi_s / r.bucket_roi_s, 2) +
                              "x",
                          r.identical ? "yes" : "NO"});
    }
    e2e_table.print();

    if (!json_path.empty())
        writeJson(json_path, micro, e2e, all_identical);

    if (!all_identical) {
        std::cerr << "\nFAIL: engines disagreed on some workload\n";
        return 2;
    }
    return 0;
}

/**
 * @file
 * Ablation: k-d tree vs brute-force nearest-neighbor search inside RRT
 * (the paper attributes up to 31% of RRT's time to NN search; this
 * quantifies what the k-d tree buys as the tree grows).
 */

#include "bench_common.h"
#include "pointcloud/dyn_kdtree.h"
#include "util/rng.h"
#include "util/stopwatch.h"

int
main()
{
    using namespace rtr;
    using namespace rtr::bench;

    banner("ablation — nearest-neighbor structure in RRT",
           "k-d tree vs brute-force scan (design choice behind the "
           "paper's 31% NN share)");

    // Micro: query cost vs tree size, 5-D joint space.
    Table micro({"tree size", "kd-tree us/query", "brute us/query",
                 "speedup"});
    Rng rng(1);
    for (std::size_t n : {1000u, 10000u, 50000u}) {
        DynKdTree tree(5);
        std::vector<std::vector<double>> points;
        for (std::size_t i = 0; i < n; ++i) {
            std::vector<double> p(5);
            for (double &v : p)
                v = rng.uniform(-3.0, 3.0);
            tree.insert(p, static_cast<std::uint32_t>(i));
            points.push_back(std::move(p));
        }
        const int queries = 2000;
        std::vector<std::vector<double>> qs;
        for (int q = 0; q < queries; ++q) {
            std::vector<double> p(5);
            for (double &v : p)
                v = rng.uniform(-3.0, 3.0);
            qs.push_back(std::move(p));
        }

        Stopwatch kd_timer;
        double checksum = 0.0;
        for (const auto &q : qs)
            checksum += tree.nearest(q).dist2;
        double kd_us = kd_timer.elapsedSec() * 1e6 / queries;

        Stopwatch brute_timer;
        for (const auto &q : qs) {
            double best = 1e300;
            for (const auto &p : points) {
                double d2 = 0.0;
                for (int d = 0; d < 5; ++d) {
                    double diff = p[static_cast<std::size_t>(d)] -
                                  q[static_cast<std::size_t>(d)];
                    d2 += diff * diff;
                }
                best = std::min(best, d2);
            }
            checksum += best;
        }
        double brute_us = brute_timer.elapsedSec() * 1e6 / queries;

        micro.addRow({Table::count(static_cast<long long>(n)),
                      Table::num(kd_us, 2), Table::num(brute_us, 2),
                      Table::num(brute_us / kd_us, 1) + "x"});
        if (checksum < 0)
            std::cout << "";  // keep the checksum live
    }
    micro.print();

    // End-to-end: the rrt kernel with and without the k-d tree.
    std::cout << "\nend-to-end rrt kernel (Map-C, mean of 8 seeds):\n";
    Table e2e({"nn structure", "ROI ms (mean)", "nn share (mean)"});
    for (int brute : {0, 1}) {
        RunningStat roi, nn;
        for (int seed = 1; seed <= 8; ++seed) {
            KernelReport report = runKernel(
                "rrt", {"--no-kdtree", std::to_string(brute), "--seed",
                        std::to_string(seed), "--instance-seed",
                        std::to_string(seed)});
            roi.add(report.roi_seconds * 1e3);
            nn.add(report.metrics.at("nn_fraction"));
        }
        e2e.addRow({brute ? "brute force" : "kd-tree",
                    Table::num(roi.mean(), 2), Table::pct(nn.mean())});
    }
    e2e.print();
    return 0;
}

/**
 * @file
 * §V.06 movtar — the heuristic-computation share grows to dominate in
 * small environments (paper: up to 62%), while large environments
 * behave like pp3d. Includes the backward-Dijkstra vs Euclidean
 * heuristic comparison the paper's design implies.
 */

#include "bench_common.h"
#include "grid/map_gen.h"
#include "search/spacetime_planner.h"
#include "util/stopwatch.h"

namespace {

using namespace rtr;

/** Build the movtar problem exactly as the kernel does. */
MovingTargetProblem
makeProblem(const CostGrid2D &field, int traj_steps, std::uint64_t seed)
{
    auto find_passable = [&](double fx, double fy) {
        Cell2 anchor{static_cast<int>(field.width() * fx),
                     static_cast<int>(field.height() * fy)};
        while (!field.passable(anchor.x, anchor.y))
            anchor.x = (anchor.x + 1) % field.width();
        return anchor;
    };
    MovingTargetProblem problem;
    problem.field = &field;
    problem.target_trajectory = makeTargetTrajectory(
        field, find_passable(0.75, 0.75), traj_steps, seed * 13 + 7);
    problem.robot_start = find_passable(0.1, 0.1);
    return problem;
}

} // namespace

int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    rtr::bench::requireKnownOptions(argc, argv);
    using namespace rtr;
    using namespace rtr::bench;

    banner("06.movtar — catching a moving target",
           "performance is input-dependent: heuristic computation up to "
           "62% in small environments; pp3d-like in large ones (Fig. 7)");

    Table table({"env", "heuristic share (mean)", "search share (mean)",
                 "expanded (mean)", "ROI ms (mean)"});
    const int n_seeds = 5;
    for (int size : {48, 96, 160, 256}) {
        RunningStat heuristic, search, expanded, roi;
        for (int seed = 1; seed <= n_seeds; ++seed) {
            KernelReport report = runKernel(
                "movtar", {"--env-size", std::to_string(size),
                           "--trajectory-steps",
                           std::to_string(size * 3 / 2), "--seed",
                           std::to_string(seed)});
            heuristic.add(report.metrics.at("heuristic_fraction"));
            search.add(report.metrics.at("search_fraction"));
            expanded.add(report.metrics.at("expanded"));
            roi.add(report.roi_seconds * 1e3);
        }
        table.addRow(
            {std::to_string(size) + "x" + std::to_string(size),
             Table::pct(heuristic.mean()), Table::pct(search.mean()),
             Table::count(static_cast<long long>(expanded.mean())),
             Table::num(roi.mean(), 1)});
    }
    table.print();
    std::cout << "(run-to-run variation is large by design — Table I "
                 "lists movtar's bottleneck as 'input-dependent')\n";

    // Ablation: environment-aware backward Dijkstra vs blind Euclidean.
    std::cout << "\nheuristic ablation (96x96): backward Dijkstra vs "
                 "Euclidean\n";
    CostGrid2D field = makeCostField(96, 96, 1);
    Table ablation({"heuristic", "expanded", "plan cost", "time (ms)"});
    for (auto kind : {MovingTargetProblem::Heuristic::BackwardDijkstra,
                      MovingTargetProblem::Heuristic::Euclidean}) {
        MovingTargetProblem problem = makeProblem(field, 144, 1);
        problem.heuristic = kind;
        Stopwatch timer;
        SpacetimePlan plan = planMovingTarget(problem);
        ablation.addRow(
            {kind == MovingTargetProblem::Heuristic::BackwardDijkstra
                 ? "backward-dijkstra"
                 : "euclidean",
             Table::count(static_cast<long long>(plan.expanded)),
             plan.found ? Table::num(plan.cost, 1) : "(not caught)",
             Table::num(timer.elapsedSec() * 1e3, 1)});
    }
    ablation.print();
    return 0;
}

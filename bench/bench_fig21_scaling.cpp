/**
 * @file
 * Regenerates Fig. 21: execution time of RTRBench's pp2d-style planner
 * vs an educational C-Rob-style baseline on the PythonRobotics map,
 * scaled by factors of two.
 *
 * The paper reports 74x-13576x speedups over CppRobotics, growing with
 * scale; the Python column (P-Rob) is not reproducible here (no Python
 * runtime), so this harness reproduces the C-Rob comparison, whose
 * slowness the paper attributes to by-value passing of large
 * structures — exactly what baseline::naiveAStar does.
 */

#include "bench_common.h"
#include "grid/map_gen.h"
#include "search/grid_planner2d.h"
#include "search/naive_astar.h"
#include "util/stopwatch.h"

int
main()
{
    using namespace rtr;
    using namespace rtr::bench;

    banner("Fig. 21 — performance comparison of different libraries",
           "RTRBench 74x-13576x faster than C-Rob, gap grows with scale");

    // The demo's start (10,10) and goal (50,50), in world coordinates
    // with origin (-10,-10).
    Table table({"scale", "cells", "RTRBench (s)", "C-Rob-style (s)",
                 "speedup", "same cost"});

    // Beyond this scale the baseline's quadratic copying makes runs
    // minutes long (as in the paper, whose C-Rob column reaches 6560 s).
    const int max_naive_scale = 4;

    for (int scale : {1, 2, 4, 8, 16, 32}) {
        OccupancyGrid2D map = makePRobMap(scale);
        Cell2 start = map.worldToCell({10.0, 10.0});
        Cell2 goal = map.worldToCell({50.0, 50.0});

        GridPlanner2D planner(map);
        Stopwatch fast_timer;
        GridPlan2D fast = planner.plan(start, goal);
        double fast_seconds = fast_timer.elapsedSec();

        std::string naive_seconds = "(skipped)";
        std::string speedup = "-";
        std::string same_cost = "-";
        if (scale <= max_naive_scale) {
            Stopwatch naive_timer;
            baseline::NaivePlan naive =
                baseline::naiveAStar(map, start, goal);
            double slow_seconds = naive_timer.elapsedSec();
            naive_seconds = Table::num(slow_seconds, 3);
            speedup =
                Table::num(slow_seconds / std::max(fast_seconds, 1e-9),
                           0) +
                "x";
            // Both planners are A* over the same costs; their optimal
            // path costs (world units) must agree.
            same_cost = (fast.found && naive.found &&
                         std::abs(fast.cost - naive.cost) < 1e-6)
                            ? "yes"
                            : "NO";
        }

        table.addRow({std::to_string(scale) + "x",
                      Table::count(static_cast<long long>(map.width()) *
                                   map.height()),
                      Table::num(fast_seconds, 4), naive_seconds, speedup,
                      same_cost});
    }
    table.print();
    std::cout << "\nNote: P-Rob (Python) column of Fig. 21 is not "
                 "reproducible without a Python runtime; the paper "
                 "reports it a further ~3x-10x slower than C-Rob at "
                 "small scales.\n";
    return 0;
}

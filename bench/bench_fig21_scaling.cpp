/**
 * @file
 * Regenerates Fig. 21: execution time of RTRBench's pp2d-style planner
 * vs an educational C-Rob-style baseline on the PythonRobotics map,
 * scaled by factors of two.
 *
 * The paper reports 74x-13576x speedups over CppRobotics, growing with
 * scale; the Python column (P-Rob) is not reproducible here (no Python
 * runtime), so this harness reproduces the C-Rob comparison, whose
 * slowness the paper attributes to by-value passing of large
 * structures — exactly what baseline::naiveAStar does.
 */

#include <algorithm>

#include "bench_common.h"
#include "grid/map_gen.h"
#include "search/grid_planner2d.h"
#include "search/naive_astar.h"
#include "util/stopwatch.h"

namespace {

/**
 * Thread-scaling sweep over the parallelized kernels: per-kernel
 * speedup curves vs --threads 1, plus a determinism check that the
 * kernel's headline metric is identical at every thread count.
 */
void
runThreadScalingSweep()
{
    using namespace rtr;
    using namespace rtr::bench;

    banner("Thread scaling — parallelized kernels (rtr::parallel_for)",
           "deterministic runtime: identical metrics at every thread "
           "count, speedup bounded by cores");

    // Per kernel: the wall-clock being sped up (ROI, except prm whose
    // parallel phase is the offline build) and one deterministic
    // metric that must not move across thread counts.
    struct Sweep
    {
        const char *kernel;
        std::vector<std::string> overrides;
        const char *time_metric;  // nullptr = ROI seconds
        const char *check_metric;
    };
    const std::vector<Sweep> sweeps = {
        {"pfl", {}, nullptr, "final_error_m"},
        {"srec", {}, nullptr, "mean_pose_error_m"},
        {"cem", {"--repeats", "400"}, nullptr, "best_reward"},
        {"mpc", {}, nullptr, "avg_tracking_error_m"},
        {"prm", {}, "offline_seconds", "path_cost_rad"},
    };

    std::vector<std::string> headers = {"kernel"};
    for (std::size_t t : threadSweep())
        headers.push_back(std::to_string(t) + "T (s)");
    headers.push_back("best speedup");
    headers.push_back("metrics identical");
    Table table(headers);

    for (const Sweep &sweep : sweeps) {
        std::vector<std::string> row = {sweep.kernel};
        double base_seconds = 0.0;
        double best_speedup = 1.0;
        bool identical = true;
        double reference_metric = 0.0;
        bool first = true;
        for (std::size_t t : threadSweep()) {
            std::vector<std::string> overrides = sweep.overrides;
            overrides.push_back("--threads");
            overrides.push_back(std::to_string(t));
            KernelReport report = runKernel(sweep.kernel, overrides);
            double seconds =
                sweep.time_metric
                    ? report.metrics.at(sweep.time_metric)
                    : report.roi_seconds;
            double metric = report.metrics.count(sweep.check_metric)
                                ? report.metrics.at(sweep.check_metric)
                                : 0.0;
            if (first) {
                base_seconds = seconds;
                reference_metric = metric;
                first = false;
            } else {
                identical = identical && metric == reference_metric;
                if (seconds > 0.0)
                    best_speedup = std::max(best_speedup,
                                            base_seconds / seconds);
            }
            row.push_back(Table::num(seconds, 3));
        }
        row.push_back(Table::num(best_speedup, 2) + "x");
        row.push_back(identical ? "yes" : "NO");
        table.addRow(row);
    }
    table.print();
    std::cout << "\nhardware threads: " << hardwareThreads()
              << " (speedups >1x require a multi-core machine; "
                 "--threads 1 reproduces the paper-faithful sequential "
                 "run)\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rtr;
    using namespace rtr::bench;

    Harness harness(argc, argv);
    requireKnownOptions(argc, argv);

    runThreadScalingSweep();

    banner("Fig. 21 — performance comparison of different libraries",
           "RTRBench 74x-13576x faster than C-Rob, gap grows with scale");

    // The demo's start (10,10) and goal (50,50), in world coordinates
    // with origin (-10,-10).
    Table table({"scale", "cells", "RTRBench (s)", "C-Rob-style (s)",
                 "speedup", "same cost"});

    // Beyond this scale the baseline's quadratic copying makes runs
    // minutes long (as in the paper, whose C-Rob column reaches 6560 s).
    const int max_naive_scale = 4;

    for (int scale : {1, 2, 4, 8, 16, 32}) {
        OccupancyGrid2D map = makePRobMap(scale);
        Cell2 start = map.worldToCell({10.0, 10.0});
        Cell2 goal = map.worldToCell({50.0, 50.0});

        GridPlanner2D planner(map);
        Stopwatch fast_timer;
        GridPlan2D fast = planner.plan(start, goal);
        double fast_seconds = fast_timer.elapsedSec();

        std::string naive_seconds = "(skipped)";
        std::string speedup = "-";
        std::string same_cost = "-";
        if (scale <= max_naive_scale) {
            Stopwatch naive_timer;
            baseline::NaivePlan naive =
                baseline::naiveAStar(map, start, goal);
            double slow_seconds = naive_timer.elapsedSec();
            naive_seconds = Table::num(slow_seconds, 3);
            speedup =
                Table::num(slow_seconds / std::max(fast_seconds, 1e-9),
                           0) +
                "x";
            // Both planners are A* over the same costs; their optimal
            // path costs (world units) must agree.
            same_cost = (fast.found && naive.found &&
                         std::abs(fast.cost - naive.cost) < 1e-6)
                            ? "yes"
                            : "NO";
        }

        table.addRow({std::to_string(scale) + "x",
                      Table::count(static_cast<long long>(map.width()) *
                                   map.height()),
                      Table::num(fast_seconds, 4), naive_seconds, speedup,
                      same_cost});
    }
    table.print();
    std::cout << "\nNote: P-Rob (Python) column of Fig. 21 is not "
                 "reproducible without a Python runtime; the paper "
                 "reports it a further ~3x-10x slower than C-Rob at "
                 "small scales.\n";
    return 0;
}

/**
 * @file
 * §V.14 mpc — the optimization solve takes > 80% of execution time.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    rtr::bench::requireKnownOptions(argc, argv);
    using namespace rtr;
    using namespace rtr::bench;

    banner("14.mpc — model predictive control",
           "solving the optimization problem takes > 80% of execution "
           "time (Fig. 16)");

    Table table({"horizon", "optimize share", "track err (m)",
                 "max v (limit 2.0)", "cost evals", "ROI (ms)"});
    for (int horizon : {8, 15, 25}) {
        KernelReport report =
            runKernel("mpc", {"--horizon", std::to_string(horizon)});
        table.addRow(
            {std::to_string(horizon),
             Table::pct(report.metrics.at("optimize_fraction")),
             Table::num(report.metrics.at("avg_tracking_error_m"), 3),
             Table::num(report.metrics.at("max_velocity"), 3),
             Table::count(static_cast<long long>(
                 report.metrics.at("cost_evals"))),
             Table::num(report.roi_seconds * 1e3, 0)});
    }
    table.print();
    std::cout << "\n(paper: > 80% of time in the optimizer; constraints "
                 "— velocity/acceleration limits — hold throughout)\n";
    return 0;
}

/**
 * @file
 * Per-kernel hardware-counter characterization (the measured analog of
 * the paper's zsim micro-architectural numbers: Figs. 15/18/19 and the
 * cache-behaviour claims of §V): every kernel runs single-threaded
 * with a perf_event_open group gated on its region of interest, and
 * the table/JSON report IPC, L1D/LLC miss ratios, and MPKI per kernel.
 *
 * `--json [path]` additionally writes BENCH_counters.json (default
 * path) so EXPERIMENTS.md's cache-claims section tracks measured
 * numbers. On hosts that deny perf_event_open (containers,
 * perf_event_paranoid, missing PMU) the run degrades gracefully: the
 * table prints n/a, the JSON records "counters": "unsupported" with
 * the errno text, and the exit status stays 0.
 */

#include <cstring>

#include "bench_common.h"

namespace {

using namespace rtr;
using namespace rtr::bench;

/** Reduced-but-representative per-kernel configurations. */
struct Row
{
    const char *kernel;
    std::vector<std::string> overrides;
};

const std::vector<Row> kRows = {
    {"pfl", {"--particles", "800", "--steps", "50", "--threads", "1"}},
    {"ekfslam", {}},
    {"srec", {"--frames", "8", "--threads", "1"}},
    {"pp2d", {"--map-size", "512"}},
    {"pp3d", {"--map-size", "128"}},
    {"movtar", {"--env-size", "96"}},
    {"prm", {"--threads", "1"}},
    {"rrt", {}},
    {"rrtstar", {"--samples", "2500"}},
    {"rrtpp", {}},
    {"sym-blkw", {}},
    {"sym-fext", {}},
    {"dmp", {}},
    {"mpc", {"--ref-points", "60", "--threads", "1"}},
    {"cem", {"--repeats", "500", "--threads", "1"}},
    {"bo", {"--candidates", "8000"}},
};

/** One kernel's measured counters. */
struct Result
{
    std::string kernel;
    double roi_seconds = 0.0;
    telemetry::PerfSample sample;
};

std::string
fmt(std::optional<double> value, int digits)
{
    return value ? Table::num(*value, digits) : std::string("n/a");
}

void
writeJson(const std::string &path, bool supported,
          const std::string &reason, const std::vector<Result> &results)
{
    std::ofstream file(path);
    if (!file) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    using PC = telemetry::PerfCounter;
    JsonWriter json(file);
    json.beginObject();
    json.field("benchmark", "fig15_counters");
    json.field("threads", 1);
    json.field("scope", "user-space instructions inside each kernel's "
                        "ROI, calling thread");
    if (!supported) {
        json.field("counters", "unsupported");
        json.field("reason", reason);
    } else {
        json.field("counters", "ok");
        json.beginArray("kernels");
        for (const Result &result : results) {
            json.beginObject();
            json.field("kernel", result.kernel);
            json.field("roi_seconds", result.roi_seconds);
            for (std::size_t i = 0; i < telemetry::kPerfCounterCount;
                 ++i) {
                const auto counter = static_cast<PC>(i);
                if (result.sample.has(counter))
                    json.field(telemetry::perfCounterName(counter),
                               result.sample.get(counter));
                else
                    json.field(telemetry::perfCounterName(counter),
                               "n/a");
            }
            auto derived = [&](const char *key,
                               std::optional<double> value) {
                if (value)
                    json.field(key, *value);
                else
                    json.field(key, "n/a");
            };
            derived("ipc", result.sample.ipc());
            derived("l1d_miss_ratio", result.sample.l1dMissRatio());
            derived("llc_miss_ratio", result.sample.llcMissRatio());
            derived("l1d_mpki", result.sample.mpki(PC::L1dMisses));
            derived("llc_mpki", result.sample.mpki(PC::LlcMisses));
            derived("branch_mpki",
                    result.sample.mpki(PC::BranchMisses));
            json.field("multiplexed", result.sample.multiplexed);
            json.endObject();
        }
        json.endArray();
    }
    json.endObject();
    std::cout << "\nwrote " << path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    rtr::bench::requireKnownOptions(argc, argv, {"--json [path]"});

    bool write_json = false;
    std::string json_path = "BENCH_counters.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            write_json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                json_path = argv[++i];
        }
    }

    banner("Hardware counters — per-kernel IPC and cache behaviour",
           "the zsim micro-architectural numbers (Figs. 15/18/19, "
           "cache claims of paragraph V), measured with perf_event "
           "groups over each kernel's ROI");

    telemetry::PerfCounterGroup group;
    if (!group.open()) {
        std::cout << "hardware counters unavailable on this host: "
                  << group.unsupportedReason() << "\n"
                  << "(check kernel.perf_event_paranoid / container "
                     "seccomp policy; all metrics degrade to n/a)\n";
        if (write_json)
            writeJson(json_path, false, group.unsupportedReason(), {});
        return 0;
    }

    std::vector<Result> results;
    Table table({"Kernel", "IPC", "L1D miss", "LLC miss", "LLC MPKI",
                 "br MPKI", "instr (M)", "ROI (ms)"});
    for (const Row &row : kRows) {
        // Warm run, un-armed: page faults and map generation do not
        // reach the counters.
        for (int w = 0; w < warmupRuns(); ++w)
            (void)runKernel(row.kernel, row.overrides);

        group.reset();
        telemetry::armRoiCounters(&group);
        KernelReport report = runKernel(row.kernel, row.overrides);
        telemetry::armRoiCounters(nullptr);

        Result result;
        result.kernel = row.kernel;
        result.roi_seconds = report.roi_seconds;
        result.sample = group.read();
        results.push_back(result);

        using PC = telemetry::PerfCounter;
        const telemetry::PerfSample &s = result.sample;
        table.addRow(
            {result.kernel, fmt(s.ipc(), 2),
             s.l1dMissRatio() ? Table::pct(*s.l1dMissRatio(), 1)
                              : std::string("n/a"),
             s.llcMissRatio() ? Table::pct(*s.llcMissRatio(), 1)
                              : std::string("n/a"),
             fmt(s.mpki(PC::LlcMisses), 2),
             fmt(s.mpki(PC::BranchMisses), 2),
             s.has(PC::Instructions)
                 ? Table::num(s.get(PC::Instructions) / 1e6, 0)
                 : std::string("n/a"),
             Table::num(report.roi_seconds * 1e3, 1)});
    }
    table.print();
    std::cout << "\nscope: user-space instructions on the calling "
                 "thread, inside each kernel's ROI (--threads 1 on "
                 "parallel kernels so nothing escapes the counter "
                 "scope)\n";

    if (write_json)
        writeJson(json_path, true, "", results);
    return 0;
}

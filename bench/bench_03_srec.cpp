/**
 * @file
 * §V.03 srec — point-cloud-operation share (paper: > 68% of time
 * waiting on memory-bound point-cloud work) and reconstruction quality.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    rtr::bench::requireKnownOptions(argc, argv);
    using namespace rtr;
    using namespace rtr::bench;

    banner("03.srec — 3-D scene reconstruction (ICP)",
           "memory-bound point-cloud operations dominate (> 68%); "
           "matrix ops are the secondary cost (Fig. 4)");

    Table table({"frames", "pointcloud share", "matrix-ops share",
                 "pose err (m)", "model points", "ROI (ms)"});
    for (int frames : {8, 14, 20}) {
        KernelReport report =
            runKernel("srec", {"--frames", std::to_string(frames)});
        table.addRow(
            {std::to_string(frames),
             Table::pct(report.metrics.at("pointcloud_fraction")),
             Table::pct(report.metrics.at("matrix_ops_fraction")),
             Table::num(report.metrics.at("mean_pose_error_m"), 3),
             Table::count(static_cast<long long>(
                 report.metrics.at("model_points"))),
             Table::num(report.roi_seconds * 1e3, 0)});
    }
    table.print();
    std::cout << "\n(point-cloud share = NN correspondences + normals + "
                 "transform/merge traffic; paper reports > 68% of time "
                 "stalled on this memory-bound work)\n";
    return 0;
}

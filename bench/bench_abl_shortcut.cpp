/**
 * @file
 * Ablation: shortcut iteration count (§V.10): "the post-processing
 * step could run for several iterations to further reduce the path
 * cost" — this sweeps that knob.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace rtr;
    using namespace rtr::bench;

    Harness harness(argc, argv);
    requireKnownOptions(argc, argv);

    banner("ablation — shortcut iterations in rrtpp",
           "more post-processing iterations keep lowering path cost "
           "with diminishing returns (paper Fig. 12)");

    Table table({"iterations", "path rad (mean)", "improvement",
                 "post-proc share (mean)"});
    const int n_seeds = 6;
    double baseline_cost = 0.0;
    for (int iterations : {0, 25, 50, 100, 200, 400}) {
        RunningStat cost, share;
        for (int seed = 1; seed <= n_seeds; ++seed) {
            KernelReport report = runKernel(
                "rrtpp",
                {"--shortcut-iterations", std::to_string(iterations),
                 "--seed", std::to_string(seed), "--instance-seed", std::to_string(seed)});
            if (!report.success)
                continue;
            cost.add(report.metrics.at("cost_after_rad"));
            share.add(report.metrics.at("shortcut_fraction"));
        }
        if (iterations == 0)
            baseline_cost = cost.mean();
        table.addRow(
            {std::to_string(iterations), Table::num(cost.mean(), 2),
             Table::pct(1.0 - cost.mean() / baseline_cost),
             Table::pct(share.mean())});
    }
    table.print();
    return 0;
}

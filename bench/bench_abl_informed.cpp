/**
 * @file
 * Ablation: informed sampling in RRT* (Gammell et al., the paper's
 * [34]): after the first solution, rejecting samples outside the
 * informed spheroid focuses refinement where it can still help.
 */

#include "arm/cspace.h"
#include "arm/workspace.h"
#include "bench_common.h"
#include "geom/angle.h"
#include "plan/rrt_star.h"
#include "util/stopwatch.h"

int
main(int argc, char **argv)
{
    using namespace rtr;
    using namespace rtr::bench;

    Harness harness(argc, argv);
    requireKnownOptions(argc, argv);

    banner("ablation — informed sampling in RRT*",
           "reject provably-useless samples once a solution exists "
           "(Informed RRT*, the paper's reference [34])");

    PlanarArm arm = PlanarArm::uniform({0.25, 0.0}, 5, 0.45);
    Workspace workspace = makeMapC();
    ConfigSpace space(5, -kPi, kPi);
    ArmCollisionChecker checker(arm, workspace);

    Table table({"variant", "path rad (mean)", "time ms (mean)",
                 "tree size (mean)", "found"});
    for (bool informed : {false, true}) {
        RrtStarConfig config;
        config.max_samples = 4000;
        config.refine_factor = 1e18;  // full budget: quality mode
        config.rewire_radius = 1.2;   // wide enough to rewire in 5-D
        config.informed_sampling = informed;
        RrtStarPlanner planner(space, checker, config);

        RunningStat cost, ms, tree;
        int found = 0;
        const int n_runs = 6;
        for (int run = 1; run <= n_runs; ++run) {
            // Endpoints fixed per run index, shared across variants.
            Rng endpoint_rng(static_cast<std::uint64_t>(run) * 17 + 5);
            ArmConfig start, goal;
            auto sample_free = [&]() -> ArmConfig {
                while (true) {
                    ArmConfig q = space.sample(endpoint_rng);
                    if (!checker.configCollides(q))
                        return q;
                }
            };
            start = sample_free();
            do {
                goal = sample_free();
            } while (ConfigSpace::distance(start, goal) < 1.2);

            Rng rng(static_cast<std::uint64_t>(run));
            Stopwatch timer;
            RrtStarPlan plan = planner.plan(start, goal, rng);
            if (!plan.found)
                continue;
            ++found;
            cost.add(plan.cost);
            ms.add(timer.elapsedSec() * 1e3);
            tree.add(static_cast<double>(plan.tree_size));
        }
        table.addRow({informed ? "informed" : "uniform",
                      Table::num(cost.mean(), 2),
                      Table::num(ms.mean(), 1),
                      Table::num(tree.mean(), 0),
                      std::to_string(found) + "/6"});
    }
    table.print();
    std::cout << "\n(at benchmark scales the incumbent path cost stays "
                 "well above the start-goal distance, so the informed "
                 "spheroid covers most of the joint space and the "
                 "filter is nearly neutral — informed sampling pays off "
                 "as the incumbent approaches optimal, per the paper's "
                 "reference [34])\n";
    return 0;
}

/**
 * @file
 * Regenerates Table I: every kernel with its pipeline stage and its
 * measured dominant bottleneck (phase shares of the ROI), at reduced
 * but representative configurations so the whole table runs in tens of
 * seconds.
 */

#include <algorithm>

#include "bench_common.h"

namespace {

using namespace rtr;
using namespace rtr::bench;

/** Per-kernel run configuration and the Table I bottleneck label. */
struct Row
{
    const char *kernel;
    const char *paper_bottleneck;
    std::vector<std::string> overrides;
};

const std::vector<Row> kRows = {
    {"pfl", "Ray-casting", {"--particles", "800", "--steps", "50"}},
    {"ekfslam", "Matrix operations", {}},
    {"srec", "Point cloud ops, matrix ops", {"--frames", "8"}},
    {"pp2d", "Collision detection", {"--map-size", "512"}},
    {"pp3d", "Collision detection, graph search", {"--map-size", "128"}},
    {"movtar", "Input-dependent", {"--env-size", "96"}},
    {"prm", "Graph search, L2-norm calculations", {}},
    {"rrt", "Collision detection, NN search", {}},
    {"rrtstar", "Collision detection, NN search", {"--samples", "2500"}},
    {"rrtpp", "Collision detection, NN search", {}},
    {"sym-blkw", "Graph search, string manipulation", {}},
    {"sym-fext", "Graph search, string manipulation", {}},
    {"dmp", "Fine-grained serialization", {}},
    {"mpc", "Optimization", {"--ref-points", "60"}},
    {"cem", "Sort", {"--repeats", "500"}},
    {"bo", "Sort", {"--candidates", "8000"}},
};

} // namespace

int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    rtr::bench::requireKnownOptions(argc, argv);
    banner("Table I — RTRBench's kernels and their key characteristics",
           "stage + dominant bottleneck per kernel (Table I)");

    Table table({"Kernel", "Stage", "Paper bottleneck",
                 "Measured top phases (share of ROI)", "ROI (ms)",
                 "ok"});

    int index = 0;
    for (const Row &row : kRows) {
        ++index;
        KernelReport report = runKernel(row.kernel, row.overrides);

        // Top two phases by inclusive share.
        std::vector<std::pair<double, std::string>> shares;
        for (const auto &phase : report.profiler.phases())
            shares.emplace_back(report.phaseFraction(phase.name),
                                phase.name);
        std::sort(shares.rbegin(), shares.rend());
        std::string top;
        for (std::size_t i = 0; i < shares.size() && i < 2; ++i) {
            if (i)
                top += ", ";
            top += shares[i].second + " " +
                   Table::pct(shares[i].first, 0);
        }

        auto kernel = makeKernel(row.kernel);
        std::string id = (index < 10 ? "0" : "") + std::to_string(index);
        table.addRow({id + "." + row.kernel,
                      stageName(kernel->stage()), row.paper_bottleneck,
                      top, Table::num(report.roi_seconds * 1e3, 1),
                      report.success ? "yes" : "NO"});
    }
    table.print();
    return 0;
}

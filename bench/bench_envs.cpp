/**
 * @file
 * Ablation: batched environments (soa vs scalar rollout engine).
 *
 * The cem, mpc, bo and pfl kernels all advance many independent
 * environments through serial per-step dynamics. The soa engine runs
 * simd::VecD lanes of environments in lockstep (DESIGN.md "Batched
 * environments"); this bench measures what that buys:
 *
 *  1. micro: steps/s of the four batched models (ball-throw
 *     evaluation, unicycle stepping, pfl motion model, pfl beam
 *     weighting) over an environment-count sweep 64..8192 — the
 *     scaling curve of SIMD-across-environments;
 *  2. end-to-end: the four kernels under --batch soa vs --batch
 *     scalar, ROI seconds and output-metric identity.
 *
 * Both engines are bitwise identical by contract; the bench asserts
 * this on every micro workload and every kernel output and exits 2 on
 * any mismatch. `--json [path]` writes BENCH_envs.json (default path)
 * so EXPERIMENTS.md tracks measured numbers.
 */

#include <cstring>

#include "bench_common.h"
#include "control/ball_throw.h"
#include "control/batch_env.h"
#include "perception/batch_pfl.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/stopwatch.h"

namespace {

using namespace rtr;
using namespace rtr::bench;

/** Best-of-@p reps seconds for one call of @p body, after one warmup. */
template <typename F>
double
bestOf(int reps, F &&body)
{
    body();
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        Stopwatch timer;
        body();
        best = std::min(best, timer.elapsedSec());
    }
    return best;
}

bool
sameArray(const std::vector<double> &a, const std::vector<double> &b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(double)) == 0;
}

/** One micro size-point: all four models, both engines. */
struct MicroResult
{
    std::size_t num_envs = 0;
    double throw_soa_meps = 0.0, throw_scalar_meps = 0.0;
    double step_soa_meps = 0.0, step_scalar_meps = 0.0;
    double motion_soa_meps = 0.0, motion_scalar_meps = 0.0;
    double weight_soa_meps = 0.0, weight_scalar_meps = 0.0;
    bool identical = true;
};

MicroResult
microAt(std::size_t n, Rng &rng)
{
    const int reps = 5;
    MicroResult res;
    res.num_envs = n;

    // -- ball-throw evaluation (reward + 32-sample trace) --
    {
        BallThrowEnv env(5.0);
        std::vector<double> t1(n), t2(n), sp(n);
        for (std::size_t e = 0; e < n; ++e) {
            t1[e] = rng.uniform(env.lowerBounds()[0],
                                env.upperBounds()[0]);
            t2[e] = rng.uniform(env.lowerBounds()[1],
                                env.upperBounds()[1]);
            sp[e] = rng.uniform(env.lowerBounds()[2],
                                env.upperBounds()[2]);
        }
        std::vector<double> r_soa(n), r_sc(n);
        std::vector<double> tr_soa(n * 64), tr_sc(n * 64);
        const double soa_s = bestOf(reps, [&] {
            evaluateThrowBatch(env, t1.data(), t2.data(), sp.data(), n,
                               r_soa.data(), tr_soa.data(),
                               BatchEngine::Soa);
        });
        const double sc_s = bestOf(reps, [&] {
            evaluateThrowBatch(env, t1.data(), t2.data(), sp.data(), n,
                               r_sc.data(), tr_sc.data(),
                               BatchEngine::Scalar);
        });
        res.throw_soa_meps = static_cast<double>(n) / soa_s / 1e6;
        res.throw_scalar_meps = static_cast<double>(n) / sc_s / 1e6;
        res.identical = res.identical && sameArray(r_soa, r_sc) &&
                        sameArray(tr_soa, tr_sc);
    }

    // -- unicycle model stepping (one horizon of 16 steps) --
    {
        const std::size_t steps = 16;
        MpcConfig config;
        std::vector<double> v(steps * n), w(steps * n);
        for (double &x : v)
            x = rng.uniform(0.0, 2.0);
        for (double &x : w)
            x = rng.uniform(-1.5, 1.5);
        UnicycleState start;
        start.theta = 0.4;
        start.v = 1.0;
        UnicycleBatch soa, sc;
        auto roll = [&](UnicycleBatch &batch, BatchEngine engine) {
            batch.assign(n, start);
            for (std::size_t k = 0; k < steps; ++k)
                stepUnicycleBatch(batch, v.data() + k * n,
                                  w.data() + k * n, config.dt, engine);
        };
        const double soa_s =
            bestOf(reps, [&] { roll(soa, BatchEngine::Soa); });
        const double sc_s =
            bestOf(reps, [&] { roll(sc, BatchEngine::Scalar); });
        const double env_steps = static_cast<double>(n * steps);
        res.step_soa_meps = env_steps / soa_s / 1e6;
        res.step_scalar_meps = env_steps / sc_s / 1e6;
        res.identical = res.identical && sameArray(soa.x, sc.x) &&
                        sameArray(soa.y, sc.y) &&
                        sameArray(soa.theta, sc.theta) &&
                        sameArray(soa.v, sc.v);
    }

    // -- pfl odometry motion model --
    {
        OdometryReading odom;
        odom.rot1 = 0.15;
        odom.trans = 0.3;
        odom.rot2 = -0.08;
        std::vector<double> x(n), y(n), th(n), n1(n), n2(n), n3(n);
        for (std::size_t e = 0; e < n; ++e) {
            x[e] = rng.uniform(-5.0, 5.0);
            y[e] = rng.uniform(-5.0, 5.0);
            th[e] = rng.uniform(-3.1, 3.1);
            n1[e] = rng.normal(0.0, 0.05);
            n2[e] = rng.normal(0.0, 0.02);
            n3[e] = rng.normal(0.0, 0.05);
        }
        std::vector<double> xs, ys, ths, xc, yc, thc;
        const double soa_s = bestOf(reps, [&] {
            xs = x; ys = y; ths = th;
            motionModelSoa(xs.data(), ys.data(), ths.data(), n1.data(),
                           n2.data(), n3.data(), odom, n);
        });
        const double sc_s = bestOf(reps, [&] {
            xc = x; yc = y; thc = th;
            motionModelScalar(xc.data(), yc.data(), thc.data(),
                              n1.data(), n2.data(), n3.data(), odom, n);
        });
        res.motion_soa_meps = static_cast<double>(n) / soa_s / 1e6;
        res.motion_scalar_meps = static_cast<double>(n) / sc_s / 1e6;
        res.identical = res.identical && sameArray(xs, xc) &&
                        sameArray(ys, yc) && sameArray(ths, thc);
    }

    // -- pfl beam sensor-model weighting (60 beams, the kernel's
    //    default scan) --
    {
        const std::size_t n_beams = 60;
        BeamSensorModel model;
        std::vector<double> expected(n * n_beams), scan(n_beams);
        for (double &r : expected)
            r = rng.uniform(0.0, 10.0);
        for (double &r : scan)
            r = rng.uniform(0.0, 10.0);
        std::vector<double> lw_soa(n), lw_sc(n);
        const double soa_s = bestOf(reps, [&] {
            beamLogWeights(expected.data(), n, n_beams, scan.data(),
                           model, 10.0, lw_soa.data(), BatchEngine::Soa);
        });
        const double sc_s = bestOf(reps, [&] {
            beamLogWeights(expected.data(), n, n_beams, scan.data(),
                           model, 10.0, lw_sc.data(),
                           BatchEngine::Scalar);
        });
        res.weight_soa_meps = static_cast<double>(n) / soa_s / 1e6;
        res.weight_scalar_meps = static_cast<double>(n) / sc_s / 1e6;
        res.identical = res.identical && sameArray(lw_soa, lw_sc);
    }
    return res;
}

/** End-to-end: one kernel under --batch soa vs --batch scalar. */
struct E2eResult
{
    std::string kernel;
    double soa_roi_s = 0.0;
    double scalar_roi_s = 0.0;
    bool identical = true;
};

/**
 * Kernel-output metrics that must be engine-independent. Timing
 * metrics (fractions, seconds) legitimately differ; everything
 * counting work or measuring solution quality must not.
 */
const std::vector<std::string> kOutputMetrics = {
    "best_reward",        "evaluations_per_episode",
    "acquisition_evals",  "avg_tracking_error_m",
    "max_tracking_error_m", "max_velocity",
    "cost_evals",         "final_error_m",
    "final_spread_m",     "initial_spread_m",
    "rays_cast",
};

/** Reduced-but-representative configs for the four rollout kernels. */
struct E2eRow
{
    const char *kernel;
    std::vector<std::string> overrides;
};

const std::vector<E2eRow> kE2eRows = {
    {"cem", {"--repeats", "400"}},
    {"mpc", {}},
    {"bo", {"--iterations", "15"}},
    {"pfl", {}},
};

E2eResult
e2eKernel(const E2eRow &row)
{
    E2eResult res;
    res.kernel = row.kernel;
    std::vector<std::string> soa_args = row.overrides;
    soa_args.insert(soa_args.end(), {"--batch", "soa"});
    std::vector<std::string> scalar_args = row.overrides;
    scalar_args.insert(scalar_args.end(), {"--batch", "scalar"});

    const KernelReport soa = runKernelWarm(row.kernel, soa_args);
    const KernelReport scalar = runKernelWarm(row.kernel, scalar_args);
    res.soa_roi_s = soa.roi_seconds;
    res.scalar_roi_s = scalar.roi_seconds;
    for (const std::string &m : kOutputMetrics) {
        const bool in_soa = soa.metrics.count(m) != 0;
        const bool in_scalar = scalar.metrics.count(m) != 0;
        if (in_soa != in_scalar ||
            (in_soa && soa.metrics.at(m) != scalar.metrics.at(m)))
            res.identical = false;
    }
    for (const auto &[name, series] : soa.series) {
        if (!scalar.series.count(name) ||
            scalar.series.at(name) != series)
            res.identical = false;
    }
    return res;
}

void
writeJson(const std::string &path, const std::vector<MicroResult> &micro,
          const std::vector<E2eResult> &e2e, bool all_identical)
{
    std::ofstream file(path);
    if (!file) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    JsonWriter json(file);
    json.beginObject();
    json.field("benchmark", "batch_envs");
    json.field("simd_backend", simd::kBackendName);
    json.field("lane_width",
               static_cast<long long>(simd::VecD::kWidth));
    json.beginArray("scaling");
    for (const MicroResult &m : micro) {
        json.beginObject();
        json.field("num_envs", static_cast<long long>(m.num_envs));
        json.field("throw_soa_mevals_s", m.throw_soa_meps);
        json.field("throw_scalar_mevals_s", m.throw_scalar_meps);
        json.field("throw_speedup",
                   m.throw_soa_meps / m.throw_scalar_meps);
        json.field("unicycle_soa_msteps_s", m.step_soa_meps);
        json.field("unicycle_scalar_msteps_s", m.step_scalar_meps);
        json.field("unicycle_speedup",
                   m.step_soa_meps / m.step_scalar_meps);
        json.field("pfl_motion_soa_msteps_s", m.motion_soa_meps);
        json.field("pfl_motion_scalar_msteps_s", m.motion_scalar_meps);
        json.field("pfl_motion_speedup",
                   m.motion_soa_meps / m.motion_scalar_meps);
        json.field("pfl_weight_soa_mparticles_s", m.weight_soa_meps);
        json.field("pfl_weight_scalar_mparticles_s",
                   m.weight_scalar_meps);
        json.field("pfl_weight_speedup",
                   m.weight_soa_meps / m.weight_scalar_meps);
        json.field("identical", m.identical);
        json.endObject();
    }
    json.endArray();
    json.beginArray("end_to_end");
    for (const E2eResult &r : e2e) {
        json.beginObject();
        json.field("kernel", r.kernel);
        json.field("soa_roi_seconds", r.soa_roi_s);
        json.field("scalar_roi_seconds", r.scalar_roi_s);
        json.field("speedup", r.scalar_roi_s / r.soa_roi_s);
        json.field("outputs_identical", r.identical);
        json.endObject();
    }
    json.endArray();
    json.field("all_identical", all_identical);
    json.endObject();
    std::cout << "\nwrote " << path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv);
    requireKnownOptions(argc, argv, {"--json [path]"});
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json_path = "BENCH_envs.json";
            if (i + 1 < argc && argv[i + 1][0] != '-')
                json_path = argv[i + 1];
        }
    }

    banner("ablation — batched environments (soa vs scalar)",
           "cem/mpc/bo/pfl advance many independent environments; the "
           "soa engine steps simd lanes of them in lockstep");

    std::cout << "\n[1] micro: model steps/s over an environment-count "
                 "sweep (soa vs scalar, "
              << simd::kBackendName << ", "
              << simd::VecD::kWidth << " lanes)\n";
    Table scaling({"envs", "model", "scalar M/s", "soa M/s", "speedup",
                   "identical"});
    std::vector<MicroResult> micro;
    Rng rng(17);
    bool all_identical = true;
    for (std::size_t n : {64u, 256u, 1024u, 4096u, 8192u}) {
        MicroResult m = microAt(n, rng);
        micro.push_back(m);
        all_identical = all_identical && m.identical;
        const std::string count = Table::count(static_cast<long long>(n));
        const std::string same = m.identical ? "yes" : "NO";
        scaling.addRow({count, "throw eval",
                        Table::num(m.throw_scalar_meps, 2),
                        Table::num(m.throw_soa_meps, 2),
                        Table::num(m.throw_soa_meps /
                                       m.throw_scalar_meps, 2) + "x",
                        same});
        scaling.addRow({count, "unicycle step",
                        Table::num(m.step_scalar_meps, 2),
                        Table::num(m.step_soa_meps, 2),
                        Table::num(m.step_soa_meps /
                                       m.step_scalar_meps, 2) + "x",
                        same});
        scaling.addRow({count, "pfl motion",
                        Table::num(m.motion_scalar_meps, 2),
                        Table::num(m.motion_soa_meps, 2),
                        Table::num(m.motion_soa_meps /
                                       m.motion_scalar_meps, 2) + "x",
                        same});
        scaling.addRow({count, "pfl weight(60)",
                        Table::num(m.weight_scalar_meps, 3),
                        Table::num(m.weight_soa_meps, 3),
                        Table::num(m.weight_soa_meps /
                                       m.weight_scalar_meps, 2) + "x",
                        same});
    }
    scaling.print();

    std::cout << "\n[2] end-to-end: kernels under --batch soa vs "
                 "--batch scalar\n";
    Table e2e_table({"kernel", "scalar ROI s", "soa ROI s", "speedup",
                     "outputs identical"});
    std::vector<E2eResult> e2e;
    for (const E2eRow &row : kE2eRows) {
        E2eResult r = e2eKernel(row);
        e2e.push_back(r);
        all_identical = all_identical && r.identical;
        e2e_table.addRow({r.kernel, Table::num(r.scalar_roi_s, 3),
                          Table::num(r.soa_roi_s, 3),
                          Table::num(r.scalar_roi_s / r.soa_roi_s, 2) +
                              "x",
                          r.identical ? "yes" : "NO"});
    }
    e2e_table.print();

    if (!json_path.empty())
        writeJson(json_path, micro, e2e, all_identical);

    if (!all_identical) {
        std::cerr << "\nFAIL: soa and scalar engines disagree\n";
        return 2;
    }
    std::cout << "\nall soa/scalar outputs bitwise identical\n";
    return 0;
}

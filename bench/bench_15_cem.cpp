/**
 * @file
 * §V.15 cem — reward improves over samples (Fig. 18) and the sort of
 * full sample records is a non-trivial share of execution (paper:
 * around one-third, configuration-dependent).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    rtr::bench::requireKnownOptions(argc, argv);
    using namespace rtr;
    using namespace rtr::bench;

    banner("15.cem — cross-entropy method for the ball-throwing robot",
           "reward rises over 5 iterations x 15 samples (Fig. 18); "
           "sorting sample records is ~1/3 of execution time");

    KernelReport report = runKernel("cem");

    // Fig. 18: per-iteration mean reward over the 75 samples.
    const auto &rewards = report.series.at("reward");
    Table fig18({"iteration", "mean reward", "best reward"});
    for (int iter = 0; iter < 5; ++iter) {
        RunningStat stat;
        for (int s = 0; s < 15; ++s)
            stat.add(rewards[static_cast<std::size_t>(iter * 15 + s)]);
        fig18.addRow({std::to_string(iter + 1),
                      Table::num(stat.mean(), 3),
                      Table::num(stat.max(), 3)});
    }
    fig18.print();

    std::cout << "\nphase shares over "
              << static_cast<long long>(
                     report.metrics.at("evaluations_per_episode"))
              << "-evaluation episodes:\n";
    Table shares({"phase", "share"});
    for (const char *phase : {"sample", "evaluate", "sort", "refit"})
        shares.addRow({phase, Table::pct(report.phaseFraction(phase))});
    shares.print();
    std::cout << "\nsort share: "
              << Table::pct(report.metrics.at("sort_fraction"))
              << "   (paper: ~33%, configuration-dependent)\n";
    std::cout << "best reward (distance to goal): "
              << Table::num(report.metrics.at("best_reward"), 3)
              << " m\n";
    return 0;
}

/**
 * @file
 * §V.09 rrtstar — RRT* vs RRT: up to 8x slower, ~1.6x shorter paths on
 * average, NN share rising to ~49% with rewiring. Ratios are paired
 * per problem instance, then averaged.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    rtr::bench::requireKnownOptions(argc, argv);
    using namespace rtr;
    using namespace rtr::bench;

    banner("09.rrtstar — RRT* arm motion planning",
           "RRT* is up to 8x slower than RRT but returns ~1.6x shorter "
           "paths; NN share rises to ~49% with rewiring (Fig. 11)");

    const int n_seeds = 8;
    Table table({"map", "slowdown (mean)", "slowdown (max)",
                 "path ratio (mean)", "path ratio (max)",
                 "RRT* nn share (mean)"});
    for (const char *map : {"C", "F"}) {
        RunningStat slowdown, path_ratio, star_nn;
        for (int seed = 1; seed <= n_seeds; ++seed) {
            std::vector<std::string> overrides{
                "--map", map, "--seed", std::to_string(seed),
                "--instance-seed", std::to_string(seed)};
            KernelReport rrt = runKernel("rrt", overrides);
            KernelReport star = runKernel("rrtstar", overrides);
            if (!rrt.success || !star.success)
                continue;
            slowdown.add(star.roi_seconds / rrt.roi_seconds);
            path_ratio.add(rrt.metrics.at("path_cost_rad") /
                           star.metrics.at("path_cost_rad"));
            star_nn.add(star.metrics.at("nn_fraction"));
        }
        table.addRow({std::string("Map-") + map,
                      Table::num(slowdown.mean(), 1) + "x",
                      Table::num(slowdown.max(), 1) + "x",
                      Table::num(path_ratio.mean(), 2) + "x",
                      Table::num(path_ratio.max(), 2) + "x",
                      Table::pct(star_nn.mean())});
    }
    table.print();
    std::cout << "\n(" << n_seeds
              << " paired instances per map; paper: up to 8x slower, "
                 "1.6x shorter paths on average, NN up to 49%)\n";
    return 0;
}

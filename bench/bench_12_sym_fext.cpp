/**
 * @file
 * §V.12 sym-fext — same planner as sym-blkw, higher per-node
 * parallelism (~3.2x more applicable actions per expanded node).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    rtr::bench::Harness harness(argc, argv);
    rtr::bench::requireKnownOptions(argc, argv);
    using namespace rtr;
    using namespace rtr::bench;

    banner("12.sym-fext — symbolic planning: firefighting robots",
           "same planner as sym-blkw but ~3.2x more valid actions per "
           "node, i.e. ~3.2x more exploitable parallelism (Fig. 14)");

    Table table({"waypoints", "ground actions", "expanded", "plan len",
                 "string-ops share", "branching", "ROI (ms)"});
    RunningStat fext_branching;
    for (int waypoints : {4, 8, 12}) {
        KernelReport report = runKernel(
            "sym-fext", {"--waypoints", std::to_string(waypoints)});
        if (waypoints == 12)
            fext_branching.add(report.metrics.at("branching_factor"));
        table.addRow(
            {std::to_string(waypoints),
             Table::count(static_cast<long long>(
                 report.metrics.at("ground_actions"))),
             Table::count(static_cast<long long>(
                 report.metrics.at("expanded"))),
             Table::num(report.metrics.at("plan_length"), 0),
             Table::pct(report.metrics.at("string_ops_fraction")),
             Table::num(report.metrics.at("branching_factor"), 1),
             Table::num(report.roi_seconds * 1e3, 1)});
    }
    table.print();

    // The parallelism comparison (paper: ~3.2x), averaged over blkw
    // seeds at the default configurations.
    RunningStat blkw_branching;
    for (int seed = 1; seed <= 5; ++seed) {
        KernelReport report = runKernel(
            "sym-blkw", {"--seed", std::to_string(seed)});
        blkw_branching.add(report.metrics.at("branching_factor"));
    }
    std::cout << "\nbranching (valid actions per node): sym-fext "
              << Table::num(fext_branching.mean(), 1) << " vs sym-blkw "
              << Table::num(blkw_branching.mean(), 1) << "  ->  "
              << Table::num(fext_branching.mean() /
                                blkw_branching.mean(),
                            1)
              << "x   (paper: ~3.2x)\n";
    return 0;
}

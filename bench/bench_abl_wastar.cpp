/**
 * @file
 * Ablation: Weighted A* epsilon sweep (the movtar design choice,
 * §V.06): heuristic inflation trades path cost for search speed,
 * bounded by epsilon.
 */

#include "bench_common.h"
#include "grid/map_gen.h"
#include "search/grid_planner2d.h"
#include "util/stopwatch.h"

int
main(int argc, char **argv)
{
    using namespace rtr;
    using namespace rtr::bench;

    Harness harness(argc, argv);
    requireKnownOptions(argc, argv);

    banner("ablation — Weighted A* epsilon sweep",
           "WA* inflates the heuristic by epsilon: up to epsilon x "
           "costlier paths for much faster search (paper §V.06)");

    OccupancyGrid2D map = makeCityMap(512, 0.5, 1);
    GridPlanner2D planner(map);
    // Long diagonal route, point robot.
    auto find_free = [&](double fx, double fy) {
        Cell2 c{static_cast<int>(512 * fx), static_cast<int>(512 * fy)};
        while (map.occupied(c.x, c.y))
            c.x = (c.x + 1) % 512;
        return c;
    };
    Cell2 start = find_free(0.03, 0.03);
    Cell2 goal = find_free(0.97, 0.97);

    GridPlan2D optimal = planner.plan(start, goal, 1.0);
    Table table({"epsilon", "expanded", "time (ms)", "path (m)",
                 "cost / optimal", "bound"});
    for (double epsilon : {1.0, 1.2, 1.5, 2.0, 3.0, 5.0}) {
        Stopwatch timer;
        GridPlan2D plan = planner.plan(start, goal, epsilon);
        double ms = timer.elapsedSec() * 1e3;
        double ratio = plan.cost / optimal.cost;
        table.addRow({Table::num(epsilon, 1),
                      Table::count(static_cast<long long>(plan.expanded)),
                      Table::num(ms, 2), Table::num(plan.cost, 1),
                      Table::num(ratio, 4),
                      ratio <= epsilon + 1e-9 ? "holds" : "VIOLATED"});
    }
    table.print();
    return 0;
}

/**
 * @file
 * Ablation: unidirectional RRT vs bidirectional RRT-Connect on the
 * paper's arm workspaces — how much the greedy two-tree strategy saves
 * in samples and time.
 */

#include "arm/cspace.h"
#include "arm/workspace.h"
#include "bench_common.h"
#include "geom/angle.h"
#include "plan/rrt.h"
#include "plan/rrt_connect.h"
#include "util/stopwatch.h"

int
main(int argc, char **argv)
{
    using namespace rtr;
    using namespace rtr::bench;

    Harness harness(argc, argv);
    requireKnownOptions(argc, argv);

    banner("ablation — RRT vs RRT-Connect",
           "bidirectional growth with a greedy connect step vs the "
           "paper's unidirectional RRT");

    PlanarArm arm = PlanarArm::uniform({0.25, 0.0}, 5, 0.45);
    ConfigSpace space(5, -kPi, kPi);

    Table table({"map", "planner", "samples (mean)", "time ms (mean)",
                 "path rad (mean)", "found"});
    for (const char *map_name : {"C", "F"}) {
        Workspace workspace =
            map_name[0] == 'C' ? makeMapC() : makeMapF();
        ArmCollisionChecker checker(arm, workspace);
        RrtPlanner rrt(space, checker, {});
        RrtConnectPlanner connect(space, checker, {});

        RunningStat rrt_samples, rrt_ms, rrt_cost;
        RunningStat con_samples, con_ms, con_cost;
        int rrt_found = 0, con_found = 0;
        const int n_runs = 8;
        for (int run = 1; run <= n_runs; ++run) {
            Rng endpoint_rng(static_cast<std::uint64_t>(run) *
                                 2654435761ULL +
                             99);
            auto sample_free = [&]() -> ArmConfig {
                while (true) {
                    ArmConfig q = space.sample(endpoint_rng);
                    if (!checker.configCollides(q))
                        return q;
                }
            };
            ArmConfig start = sample_free();
            ArmConfig goal;
            do {
                goal = sample_free();
            } while (ConfigSpace::distance(start, goal) < 1.5);

            Rng rng_a(static_cast<std::uint64_t>(run));
            Stopwatch timer_a;
            MotionPlan a = rrt.plan(start, goal, rng_a);
            double a_ms = timer_a.elapsedSec() * 1e3;
            if (a.found) {
                ++rrt_found;
                rrt_samples.add(static_cast<double>(a.samples_drawn));
                rrt_ms.add(a_ms);
                rrt_cost.add(a.cost);
            }

            Rng rng_b(static_cast<std::uint64_t>(run));
            Stopwatch timer_b;
            MotionPlan b = connect.plan(start, goal, rng_b);
            double b_ms = timer_b.elapsedSec() * 1e3;
            if (b.found) {
                ++con_found;
                con_samples.add(static_cast<double>(b.samples_drawn));
                con_ms.add(b_ms);
                con_cost.add(b.cost);
            }
        }
        table.addRow({std::string("Map-") + map_name, "rrt",
                      Table::num(rrt_samples.mean(), 0),
                      Table::num(rrt_ms.mean(), 2),
                      Table::num(rrt_cost.mean(), 2),
                      std::to_string(rrt_found) + "/8"});
        table.addRow({std::string("Map-") + map_name, "rrt-connect",
                      Table::num(con_samples.mean(), 0),
                      Table::num(con_ms.mean(), 2),
                      Table::num(con_cost.mean(), 2),
                      std::to_string(con_found) + "/8"});
    }
    table.print();
    return 0;
}

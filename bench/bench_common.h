/**
 * @file
 * Shared helpers for the benchmark binaries: running kernels over seed
 * sweeps, printing paper-style headers, and formatting.
 */

#ifndef RTR_BENCH_BENCH_COMMON_H
#define RTR_BENCH_BENCH_COMMON_H

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "kernels/registry.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/table.h"

namespace rtr {
namespace bench {

/**
 * Warmup iterations to run (and discard) before a measured run, so
 * first-touch page faults, lazy thread-pool spin-up, and cold caches
 * do not pollute the reported phase times. Defaults to 1; override
 * with the RTR_BENCH_WARMUP environment variable (0 disables).
 */
inline int
warmupRuns()
{
    if (const char *env = std::getenv("RTR_BENCH_WARMUP")) {
        int value = std::atoi(env);
        return value >= 0 ? value : 1;
    }
    return 1;
}

/** Print the standard experiment banner. */
inline void
banner(const std::string &experiment, const std::string &paper_claim)
{
    std::cout << "==============================================================\n";
    std::cout << experiment << "\n";
    std::cout << "paper: " << paper_claim << "\n";
    std::cout << "==============================================================\n";
}

/** One kernel run with option overrides. */
inline KernelReport
runKernel(const std::string &name,
          const std::vector<std::string> &overrides = {})
{
    return makeKernel(name)->runWithDefaults(overrides);
}

/**
 * One measured kernel run preceded by warmup iterations (discarded)
 * of the same configuration; see warmupRuns().
 */
inline KernelReport
runKernelWarm(const std::string &name,
              const std::vector<std::string> &overrides = {},
              int warmup = warmupRuns())
{
    for (int i = 0; i < warmup; ++i)
        (void)makeKernel(name)->runWithDefaults(overrides);
    return makeKernel(name)->runWithDefaults(overrides);
}

/**
 * Run a kernel across several seeds and accumulate a metric.
 * Also accumulates the ROI seconds in @p roi_out when non-null.
 */
inline RunningStat
sweepMetric(const std::string &kernel, const std::string &metric,
            const std::vector<std::string> &base_overrides, int n_seeds,
            RunningStat *roi_out = nullptr)
{
    RunningStat stat;
    for (int seed = 1; seed <= n_seeds; ++seed) {
        std::vector<std::string> overrides = base_overrides;
        overrides.push_back("--seed");
        overrides.push_back(std::to_string(seed));
        KernelReport report = runKernel(kernel, overrides);
        if (report.metrics.count(metric))
            stat.add(report.metrics.at(metric));
        if (roi_out)
            roi_out->add(report.roi_seconds);
    }
    return stat;
}

/**
 * Thread counts for scaling sweeps: 1, 2, 4, ... up to (and always
 * including) the machine's hardware concurrency.
 */
inline std::vector<std::size_t>
threadSweep()
{
    std::vector<std::size_t> counts;
    for (std::size_t t = 1; t < hardwareThreads(); t *= 2)
        counts.push_back(t);
    counts.push_back(hardwareThreads());
    return counts;
}

/** Render a (possibly downsampled) series as a sparkline-style row. */
inline std::string
seriesSummary(const std::vector<double> &series, std::size_t n_points = 8)
{
    if (series.empty())
        return "(empty)";
    std::string out;
    for (std::size_t i = 0; i < n_points; ++i) {
        std::size_t idx = i * (series.size() - 1) /
                          (n_points > 1 ? n_points - 1 : 1);
        if (i)
            out += " -> ";
        out += Table::num(series[idx], 2);
    }
    return out;
}

} // namespace bench
} // namespace rtr

#endif // RTR_BENCH_BENCH_COMMON_H

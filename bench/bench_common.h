/**
 * @file
 * Shared helpers for the benchmark binaries: running kernels over seed
 * sweeps, printing paper-style headers, and formatting.
 */

#ifndef RTR_BENCH_BENCH_COMMON_H
#define RTR_BENCH_BENCH_COMMON_H

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "kernels/registry.h"
#include "telemetry/perf_counters.h"
#include "telemetry/trace.h"
#include "telemetry/trace_export.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/table.h"

namespace rtr {
namespace bench {

/**
 * Warmup iterations to run (and discard) before a measured run, so
 * first-touch page faults, lazy thread-pool spin-up, and cold caches
 * do not pollute the reported phase times. Defaults to 1; override
 * with the RTR_BENCH_WARMUP environment variable (0 disables). The
 * value is parsed strictly: anything that is not a whole non-negative
 * in-range number (RTR_BENCH_WARMUP=abc, =2x, =1e9...) falls back to
 * the default 1 rather than silently disabling warmup.
 */
inline int
warmupRuns()
{
    if (const char *env = std::getenv("RTR_BENCH_WARMUP")) {
        char *end = nullptr;
        errno = 0;
        const long value = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || errno == ERANGE ||
            value < 0 || value > std::numeric_limits<int>::max())
            return 1;
        return static_cast<int>(value);
    }
    return 1;
}

/**
 * Strict argument hygiene for bench mains (the argv analogue of the
 * strict-strtol env parsing above): every `--option` left after the
 * Harness stripped --trace/--counters must match one of @p options
 * (specs like "--json [path]"; matching is on the name before the
 * first space, and an inline `--name=value` form also matches).
 * Anything else prints a usage line and exits 2, so a typo'd flag
 * cannot silently run the bench with defaults. Non-option operands
 * (e.g. an output path after --json) are the binary's business.
 */
inline void
requireKnownOptions(int argc, char **argv,
                    std::initializer_list<const char *> options = {})
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            continue;
        const std::string name = arg.substr(0, arg.find('='));
        bool known = false;
        for (const char *spec : options) {
            const std::string spec_str(spec);
            if (name == spec_str.substr(0, spec_str.find(' '))) {
                known = true;
                break;
            }
        }
        if (!known) {
            std::cerr << argv[0] << ": unknown option '" << arg
                      << "'\nusage: " << argv[0];
            for (const char *spec : options)
                std::cerr << " [" << spec << "]";
            std::cerr << " [--trace out.json] [--counters]\n";
            std::exit(2);
        }
    }
}

/** Print the standard experiment banner. */
inline void
banner(const std::string &experiment, const std::string &paper_claim)
{
    std::cout << "==============================================================\n";
    std::cout << experiment << "\n";
    std::cout << "paper: " << paper_claim << "\n";
    std::cout << "==============================================================\n";
}

/** One kernel run with option overrides. */
inline KernelReport
runKernel(const std::string &name,
          const std::vector<std::string> &overrides = {})
{
    return makeKernel(name)->runWithDefaults(overrides);
}

/**
 * One measured kernel run preceded by warmup iterations (discarded)
 * of the same configuration; see warmupRuns().
 */
inline KernelReport
runKernelWarm(const std::string &name,
              const std::vector<std::string> &overrides = {},
              int warmup = warmupRuns())
{
    for (int i = 0; i < warmup; ++i)
        (void)makeKernel(name)->runWithDefaults(overrides);
    return makeKernel(name)->runWithDefaults(overrides);
}

/**
 * Run a kernel across several seeds and accumulate a metric.
 * Also accumulates the ROI seconds in @p roi_out when non-null.
 */
inline RunningStat
sweepMetric(const std::string &kernel, const std::string &metric,
            const std::vector<std::string> &base_overrides, int n_seeds,
            RunningStat *roi_out = nullptr)
{
    RunningStat stat;
    for (int seed = 1; seed <= n_seeds; ++seed) {
        std::vector<std::string> overrides = base_overrides;
        overrides.push_back("--seed");
        overrides.push_back(std::to_string(seed));
        KernelReport report = runKernel(kernel, overrides);
        if (report.metrics.count(metric))
            stat.add(report.metrics.at(metric));
        if (roi_out)
            roi_out->add(report.roi_seconds);
    }
    return stat;
}

/**
 * Thread counts for scaling sweeps: 1, 2, 4, ... up to (and always
 * including) the machine's hardware concurrency.
 */
inline std::vector<std::size_t>
threadSweep()
{
    std::vector<std::size_t> counts;
    for (std::size_t t = 1; t < hardwareThreads(); t *= 2)
        counts.push_back(t);
    counts.push_back(hardwareThreads());
    return counts;
}

/**
 * Minimal streaming JSON writer for the BENCH_*.json artifacts:
 * handles nesting, comma placement, string escaping, and non-finite
 * doubles (emitted as null), so emitters state structure instead of
 * punctuation. Not a general serializer — no maps, no unicode beyond
 * pass-through.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out) : out_(out)
    {
        out_.precision(12);
    }

    /** Open the root (or a nested, when keyed) object. */
    void
    beginObject(const std::string &key = std::string())
    {
        openContainer(key, '{');
    }

    void
    endObject()
    {
        closeContainer('}');
    }

    void
    beginArray(const std::string &key = std::string())
    {
        openContainer(key, '[');
    }

    void
    endArray()
    {
        closeContainer(']');
    }

    void
    field(const std::string &key, double value)
    {
        prefix(key);
        if (std::isfinite(value))
            out_ << value;
        else
            out_ << "null";
    }

    void
    field(const std::string &key, long long value)
    {
        prefix(key);
        out_ << value;
    }

    void
    field(const std::string &key, int value)
    {
        field(key, static_cast<long long>(value));
    }

    void
    field(const std::string &key, bool value)
    {
        prefix(key);
        out_ << (value ? "true" : "false");
    }

    void
    field(const std::string &key, const std::string &value)
    {
        prefix(key);
        out_ << '"' << escaped(value) << '"';
    }

    void
    field(const std::string &key, const char *value)
    {
        field(key, std::string(value));
    }

  private:
    /** Comma/newline/indent bookkeeping before any value or "key":. */
    void
    prefix(const std::string &key)
    {
        if (!stack_.empty()) {
            if (stack_.back())
                out_ << ",";
            stack_.back() = true;
            out_ << "\n" << std::string(2 * stack_.size(), ' ');
        }
        if (!key.empty())
            out_ << '"' << escaped(key) << "\": ";
    }

    void
    openContainer(const std::string &key, char open)
    {
        prefix(key);
        out_ << open;
        stack_.push_back(false);
    }

    void
    closeContainer(char close)
    {
        const bool had_items = !stack_.empty() && stack_.back();
        if (!stack_.empty())
            stack_.pop_back();
        if (had_items)
            out_ << "\n" << std::string(2 * stack_.size(), ' ');
        out_ << close;
        if (stack_.empty())
            out_ << "\n";
    }

    static std::string
    escaped(const std::string &in)
    {
        std::string out;
        out.reserve(in.size());
        for (char c : in) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    }

    std::ostream &out_;
    std::vector<bool> stack_;
};

/**
 * Shared observability harness of the bench binaries. Construct first
 * thing in main() with argc/argv; it strips the flags every bench
 * understands and leaves the rest for the binary:
 *
 *   --trace <out.json>  record a structured trace of the whole bench
 *                       (kernel phases, ROI markers, worker threads)
 *                       and export Chrome/Perfetto trace-event JSON on
 *                       exit;
 *   --counters          count hardware events (perf_event_open group)
 *                       over every region of interest the bench
 *                       executes and print IPC / cache miss ratios at
 *                       exit, or "n/a" where the host denies the PMU.
 */
class Harness
{
  public:
    Harness(int &argc, char **argv)
    {
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--trace" && i + 1 < argc) {
                trace_path_ = argv[++i];
            } else if (arg.rfind("--trace=", 0) == 0) {
                trace_path_ = arg.substr(8);
            } else if (arg == "--counters") {
                counters_ = true;
            } else {
                argv[out++] = argv[i];
            }
        }
        argc = out;

        if (!trace_path_.empty()) {
            telemetry::Tracer::global().registerCurrentThread("main");
            telemetry::Tracer::global().enable();
        }
        if (counters_) {
            group_.open();
            telemetry::armRoiCounters(&group_);
        }
    }

    ~Harness()
    {
        if (counters_) {
            telemetry::armRoiCounters(nullptr);
            printCounters();
        }
        if (!trace_path_.empty()) {
            telemetry::Tracer &tracer = telemetry::Tracer::global();
            tracer.disable();
            if (telemetry::writeChromeTraceFile(tracer, trace_path_)) {
                std::cout << "\ntrace: wrote " << tracer.totalEvents()
                          << " events to " << trace_path_;
                if (tracer.totalDropped() > 0)
                    std::cout << " (" << tracer.totalDropped()
                              << " dropped: buffer full)";
                std::cout << "\n";
            } else {
                std::cerr << "trace: cannot write " << trace_path_
                          << "\n";
            }
        }
    }

    Harness(const Harness &) = delete;
    Harness &operator=(const Harness &) = delete;

  private:
    void
    printCounters()
    {
        std::cout << "\nhardware counters (all ROIs of this run):\n";
        if (!group_.supported()) {
            std::cout << "  n/a (" << group_.unsupportedReason()
                      << ")\n";
            return;
        }
        const telemetry::PerfSample sample = group_.read();
        auto num = [](std::optional<double> v, int digits) {
            return v ? Table::num(*v, digits) : std::string("n/a");
        };
        using PC = telemetry::PerfCounter;
        auto raw = [&](PC c) {
            return sample.has(c) ? Table::num(sample.get(c) / 1e6, 1)
                                 : std::string("n/a");
        };
        std::cout << "  instructions: " << raw(PC::Instructions)
                  << " M   cycles: " << raw(PC::Cycles)
                  << " M   IPC: " << num(sample.ipc(), 2) << "\n";
        std::cout << "  L1D miss ratio: "
                  << num(sample.l1dMissRatio(), 4)
                  << "   LLC miss ratio: "
                  << num(sample.llcMissRatio(), 4)
                  << "   LLC MPKI: "
                  << num(sample.mpki(PC::LlcMisses), 2)
                  << "   branch MPKI: "
                  << num(sample.mpki(PC::BranchMisses), 2) << "\n";
        if (sample.multiplexed)
            std::cout << "  (counters were multiplexed; values are "
                         "scaled estimates)\n";
    }

    std::string trace_path_;
    bool counters_ = false;
    telemetry::PerfCounterGroup group_;
};

/** Render a (possibly downsampled) series as a sparkline-style row. */
inline std::string
seriesSummary(const std::vector<double> &series, std::size_t n_points = 8)
{
    if (series.empty())
        return "(empty)";
    std::string out;
    for (std::size_t i = 0; i < n_points; ++i) {
        std::size_t idx = i * (series.size() - 1) /
                          (n_points > 1 ? n_points - 1 : 1);
        if (i)
            out += " -> ";
        out += Table::num(series[idx], 2);
    }
    return out;
}

} // namespace bench
} // namespace rtr

#endif // RTR_BENCH_BENCH_COMMON_H
